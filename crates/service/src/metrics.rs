//! Service-level observability: per-shard counters, latency histograms,
//! and deterministic text/CSV snapshots.
//!
//! Everything here is integer counters plus sums of deterministic `f64`
//! kernel times, accumulated in a fixed order — so two identical runs
//! produce **bit-identical** snapshots, which the load generator uses as
//! its determinism check.

/// Latency histogram over simulated ticks (linear buckets, clamped tail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[t]` counts completions with latency `t` ticks
    /// (latencies ≥ the bucket count land in the last bucket).
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

/// Tracked latency resolution: latencies beyond this clamp into the last
/// bucket (quantiles saturate there; `max` stays exact).
const TRACKED_TICKS: usize = 1024;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; TRACKED_TICKS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Record one completion latency.
    pub fn record(&mut self, ticks: u64) {
        let idx = (ticks as usize).min(TRACKED_TICKS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += ticks;
        self.max = self.max.max(ticks);
    }

    /// Number of recorded completions.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in ticks (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded latency.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (e.g. 0.5, 0.99) in ticks.
    ///
    /// Edge cases are pinned down explicitly:
    /// * empty histogram → 0 for every `q`;
    /// * `q >= 1.0` → the exact maximum (tracked even beyond the bucket
    ///   range);
    /// * `q <= 0.0` (and NaN) → the smallest recorded latency (rank 1);
    /// * a rank landing in the clamped tail bucket reports the exact
    ///   maximum — the only honest statistic available there — rather
    ///   than the bucket's lower bound.
    ///
    /// Every case depends only on `(buckets, count, max)`, all of which
    /// [`LatencyHistogram::merge`] combines losslessly, so quantiles of a
    /// merged histogram equal quantiles of recording into one histogram
    /// (the property test below pins this).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let q = if q.is_finite() && q > 0.0 { q } else { 0.0 };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (t, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if t == TRACKED_TICKS - 1 {
                    self.max
                } else {
                    t as u64
                };
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Counters for one shard (or, merged, for the whole service).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardMetrics {
    /// Requests offered to this shard (admitted + refused).
    pub submitted: u64,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused at the hard queue cap.
    pub shed_overloaded: u64,
    /// Reads refused above the shed watermark.
    pub shed_reads: u64,
    /// Requests completed (replied to).
    pub completed: u64,
    /// Flush windows executed.
    pub batches: u64,
    /// Flushes triggered by reaching the batch size.
    pub flush_by_size: u64,
    /// Flushes triggered by the deadline.
    pub flush_by_deadline: u64,
    /// Requests carried by those flushes (occupancy numerator).
    pub batched_requests: u64,
    /// Keys actually probed by find kernels.
    pub table_probes: u64,
    /// KVs actually written by insert kernels.
    pub table_puts: u64,
    /// Keys actually passed to delete kernels.
    pub table_deletes: u64,
    /// Gets answered locally from the coalescing window.
    pub coalesced_local: u64,
    /// Duplicate Gets that shared an already-planned probe.
    pub dedup_saved: u64,
    /// Writes superseded within their window (never reached a kernel).
    pub writes_coalesced: u64,
    /// Structural resizes performed under this shard's batches.
    pub resize_events: u64,
    /// Batches that stalled on structural work (resize or insert retry).
    pub resize_stall_batches: u64,
    /// Upsize-and-retry cycles inside insert kernels.
    pub insert_retries: u64,
    /// Incremental-migration quanta pumped (flush-driven or between flush
    /// windows). Always 0 in the default stop-the-world configuration.
    pub migration_chunks: u64,
    /// KV pairs moved by those quanta.
    pub migration_moved: u64,
    /// Source buckets still to drain (plus pending finalize) at the last
    /// observation — a gauge, not a counter; summed across shards in
    /// totals (each shard has at most one migration in flight).
    pub migration_backlog: u64,
    /// Byte-tier (unsized) flush windows executed. Always 0 with
    /// `Tier::Fixed` — this is what gates the arena gauges' registration.
    pub byte_batches: u64,
    /// Arena slab pages held by the shard's unsized table at the last
    /// observation (gauge; totals sum to the service-wide footprint).
    pub arena_pages: u64,
    /// Arena bytes referenced by live spill handles (gauge).
    pub arena_live_bytes: u64,
    /// Arena bytes freed but not yet reused — fragmentation (gauge).
    pub arena_frag_bytes: u64,
    /// Gets answered `Value(None)` at submission by the cuckoo-filter
    /// miss shield (never entered the batcher). Always 0 with
    /// `miss_filter_bits: 0` — this gates the filter metrics'
    /// registration.
    pub filter_shed: u64,
    /// Gets the filter let through that the table then missed — filter
    /// false positives (they still received the correct `Value(None)`).
    pub filter_false_pos: u64,
    /// Live keys tracked by the shard's filter at the last flush (gauge;
    /// totals sum across shards).
    pub filter_keys: u64,
    /// Times the shard's filter overflowed and was rebuilt larger.
    pub filter_rebuilds: u64,
    /// Deepest queue observed.
    pub max_queue_depth: usize,
    /// Simulated nanoseconds spent executing this shard's kernels
    /// (batches run back-to-back, so these sum).
    pub service_ns: f64,
    /// Completion latency distribution (ticks).
    pub latency: LatencyHistogram,
}

impl ShardMetrics {
    /// Fold another shard's counters into this one (for service totals).
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.shed_overloaded += other.shed_overloaded;
        self.shed_reads += other.shed_reads;
        self.completed += other.completed;
        self.batches += other.batches;
        self.flush_by_size += other.flush_by_size;
        self.flush_by_deadline += other.flush_by_deadline;
        self.batched_requests += other.batched_requests;
        self.table_probes += other.table_probes;
        self.table_puts += other.table_puts;
        self.table_deletes += other.table_deletes;
        self.coalesced_local += other.coalesced_local;
        self.dedup_saved += other.dedup_saved;
        self.writes_coalesced += other.writes_coalesced;
        self.resize_events += other.resize_events;
        self.resize_stall_batches += other.resize_stall_batches;
        self.insert_retries += other.insert_retries;
        self.migration_chunks += other.migration_chunks;
        self.migration_moved += other.migration_moved;
        self.migration_backlog += other.migration_backlog;
        self.byte_batches += other.byte_batches;
        self.arena_pages += other.arena_pages;
        self.arena_live_bytes += other.arena_live_bytes;
        self.arena_frag_bytes += other.arena_frag_bytes;
        self.filter_shed += other.filter_shed;
        self.filter_false_pos += other.filter_false_pos;
        self.filter_keys += other.filter_keys;
        self.filter_rebuilds += other.filter_rebuilds;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.service_ns += other.service_ns;
        self.latency.merge(&other.latency);
    }

    /// Requests refused for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_overloaded + self.shed_reads
    }

    /// Fraction of offered requests refused (0 when nothing offered).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed_total() as f64 / self.submitted as f64
        }
    }

    /// Mean flush occupancy in requests per batch.
    pub fn avg_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Completed operations per second of simulated kernel time
    /// (0 when no kernel time has accrued).
    pub fn mops(&self) -> f64 {
        if self.service_ns == 0.0 {
            0.0
        } else {
            self.completed as f64 / self.service_ns * 1e3
        }
    }

    /// Copy every counter (plus the latency histogram's summary stats)
    /// into a unified [`obs::Registry`] under the `service_` namespace
    /// with the given labels. Counters add; the gauges (`max_queue_depth`,
    /// `service_ns`, latency stats) overwrite.
    pub fn register_into(&self, reg: &mut obs::Registry, labels: &[(&str, &str)]) {
        reg.counter("service_submitted", labels, self.submitted);
        reg.counter("service_admitted", labels, self.admitted);
        reg.counter("service_shed_overloaded", labels, self.shed_overloaded);
        reg.counter("service_shed_reads", labels, self.shed_reads);
        reg.counter("service_completed", labels, self.completed);
        reg.counter("service_batches", labels, self.batches);
        reg.counter("service_flush_by_size", labels, self.flush_by_size);
        reg.counter("service_flush_by_deadline", labels, self.flush_by_deadline);
        reg.counter("service_batched_requests", labels, self.batched_requests);
        reg.counter("service_table_probes", labels, self.table_probes);
        reg.counter("service_table_puts", labels, self.table_puts);
        reg.counter("service_table_deletes", labels, self.table_deletes);
        reg.counter("service_coalesced_local", labels, self.coalesced_local);
        reg.counter("service_dedup_saved", labels, self.dedup_saved);
        reg.counter("service_writes_coalesced", labels, self.writes_coalesced);
        reg.counter("service_resize_events", labels, self.resize_events);
        reg.counter(
            "service_resize_stall_batches",
            labels,
            self.resize_stall_batches,
        );
        reg.counter("service_insert_retries", labels, self.insert_retries);
        // Migration metrics appear only once incremental migration has
        // actually run, so registries (and their pinned snapshots) from
        // the default stop-the-world configuration are untouched.
        if self.migration_chunks > 0 || self.migration_backlog > 0 {
            reg.counter("service_migration_chunks", labels, self.migration_chunks);
            reg.counter("service_migration_moved", labels, self.migration_moved);
            reg.gauge(
                "service_migration_backlog",
                labels,
                self.migration_backlog as f64,
            );
        }
        // Likewise, the unsized tier's arena gauges appear only once the
        // byte-op path has flushed a batch, so fixed-tier registries (and
        // every pinned telemetry snapshot) keep their exact historical
        // shape.
        if self.byte_batches > 0 {
            reg.counter("service_byte_batches", labels, self.byte_batches);
            reg.gauge("service_arena_pages", labels, self.arena_pages as f64);
            reg.gauge(
                "service_arena_live_bytes",
                labels,
                self.arena_live_bytes as f64,
            );
            reg.gauge(
                "service_arena_frag_bytes",
                labels,
                self.arena_frag_bytes as f64,
            );
        }
        // Filter metrics appear only once a miss shield has actually done
        // something (shed, passed a false positive, or tracked a key), so
        // filter-off registries keep their exact historical shape.
        if self.filter_shed > 0 || self.filter_false_pos > 0 || self.filter_keys > 0 {
            reg.counter("service_filter_shed", labels, self.filter_shed);
            reg.counter("service_filter_false_pos", labels, self.filter_false_pos);
            reg.counter("service_filter_rebuilds", labels, self.filter_rebuilds);
            reg.gauge("service_filter_keys", labels, self.filter_keys as f64);
        }
        reg.gauge(
            "service_max_queue_depth",
            labels,
            self.max_queue_depth as f64,
        );
        reg.gauge("service_ns", labels, self.service_ns);
        reg.histogram(
            "service_latency_ticks",
            labels,
            obs::HistStats {
                count: self.latency.count(),
                mean: self.latency.mean(),
                p50: self.latency.quantile(0.5),
                p99: self.latency.quantile(0.99),
                max: self.latency.max(),
            },
        );
    }
}

/// Per-shard counters for a whole service.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// One entry per shard.
    pub per_shard: Vec<ShardMetrics>,
}

impl ServiceMetrics {
    /// Create metrics for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            per_shard: vec![ShardMetrics::default(); shards],
        }
    }

    /// All shards merged.
    pub fn total(&self) -> ShardMetrics {
        let mut t = ShardMetrics::default();
        for s in &self.per_shard {
            t.merge(s);
        }
        t
    }
}

/// One row of a rendered snapshot (a shard, or the service total).
#[derive(Debug, Clone)]
pub struct SnapshotRow {
    /// Row label (`shard N` or `total`).
    pub label: String,
    /// Live keys in the shard's table(s).
    pub keys: u64,
    /// Filled factor θ of the shard's table (total: mean).
    pub fill: f64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// The counters.
    pub m: ShardMetrics,
}

/// A point-in-time rendering of service state, in deterministic text/CSV.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Per-shard rows.
    pub shards: Vec<SnapshotRow>,
    /// Merged totals row.
    pub total: SnapshotRow,
    /// Service clock at snapshot time.
    pub clock: u64,
}

impl Snapshot {
    /// CSV columns shared by [`Snapshot::to_csv`].
    pub const CSV_HEADER: &'static str =
        "shard,keys,fill,queue_depth,max_queue_depth,submitted,admitted,completed,\
         shed_overloaded,shed_reads,batches,flush_by_size,flush_by_deadline,avg_batch_occupancy,\
         table_probes,table_puts,table_deletes,coalesced_local,dedup_saved,writes_coalesced,\
         resize_events,resize_stall_batches,insert_retries,latency_p50,latency_p99,latency_max,\
         latency_mean,service_ns,mops";

    fn csv_row(row: &SnapshotRow) -> String {
        let m = &row.m;
        format!(
            "{},{},{:.6},{},{},{},{},{},{},{},{},{},{},{:.3},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.4}",
            row.label.replace(' ', "_"),
            row.keys,
            row.fill,
            row.queue_depth,
            m.max_queue_depth,
            m.submitted,
            m.admitted,
            m.completed,
            m.shed_overloaded,
            m.shed_reads,
            m.batches,
            m.flush_by_size,
            m.flush_by_deadline,
            m.avg_batch_occupancy(),
            m.table_probes,
            m.table_puts,
            m.table_deletes,
            m.coalesced_local,
            m.dedup_saved,
            m.writes_coalesced,
            m.resize_events,
            m.resize_stall_batches,
            m.insert_retries,
            m.latency.quantile(0.5),
            m.latency.quantile(0.99),
            m.latency.max(),
            m.latency.mean(),
            m.service_ns,
            m.mops(),
        )
    }

    /// Render as CSV (header + one row per shard + a total row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for row in &self.shards {
            out.push_str(&Self::csv_row(row));
            out.push('\n');
        }
        out.push_str(&Self::csv_row(&self.total));
        out.push('\n');
        out
    }

    /// Render as an aligned human-readable table.
    pub fn to_text(&self) -> String {
        let header = [
            "shard",
            "keys",
            "fill",
            "queue",
            "submitted",
            "completed",
            "shed",
            "batches",
            "occ",
            "coalesced",
            "resizes",
            "p50",
            "p99",
            "mops",
        ];
        let mut rows: Vec<Vec<String>> = Vec::new();
        for row in self.shards.iter().chain(std::iter::once(&self.total)) {
            let m = &row.m;
            rows.push(vec![
                row.label.clone(),
                row.keys.to_string(),
                format!("{:.3}", row.fill),
                row.queue_depth.to_string(),
                m.submitted.to_string(),
                m.completed.to_string(),
                m.shed_total().to_string(),
                m.batches.to_string(),
                format!("{:.1}", m.avg_batch_occupancy()),
                (m.coalesced_local + m.dedup_saved + m.writes_coalesced).to_string(),
                m.resize_events.to_string(),
                m.latency.quantile(0.5).to_string(),
                m.latency.quantile(0.99).to_string(),
                format!("{:.2}", m.mops()),
            ]);
        }
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for r in &rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("service snapshot @ tick {}\n", self.clock);
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{c:<w$}", w = widths[i])
                    } else {
                        format!("{c:>w$}", w = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        out.push_str(&fmt_row(&header_cells));
        out.push('\n');
        for r in &rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_and_mean() {
        let mut h = LatencyHistogram::default();
        for t in [1u64, 1, 2, 2, 2, 3, 10, 10, 10, 100] {
            h.record(t);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 14.1).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_but_keeps_exact_max() {
        let mut h = LatencyHistogram::default();
        h.record(5000);
        assert_eq!(h.max(), 5000);
        // Single clamped sample: the tail bucket reports the exact max
        // for any quantile, not the bucket's lower bound.
        assert_eq!(h.quantile(0.5), 5000);
        assert_eq!(h.quantile(1.0), 5000);
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        // Empty: every quantile is 0.
        let empty = LatencyHistogram::default();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.quantile(q), 0);
        }
        let mut h = LatencyHistogram::default();
        for t in [3u64, 5, 9] {
            h.record(t);
        }
        // q <= 0 (and NaN) degenerate to the minimum recorded latency.
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(-0.5), 3);
        assert_eq!(h.quantile(f64::NAN), 3);
        // q >= 1 is the exact maximum.
        assert_eq!(h.quantile(1.0), 9);
        assert_eq!(h.quantile(1.5), 9);
        // Single-bucket histogram: every quantile is that bucket.
        let mut single = LatencyHistogram::default();
        for _ in 0..4 {
            single.record(7);
        }
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile(q), 7);
        }
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(1);
        b.record(3);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.quantile(1.0), 3);
    }

    #[test]
    fn register_into_unifies_counters_and_latency() {
        let mut m = ShardMetrics {
            submitted: 10,
            admitted: 8,
            completed: 8,
            max_queue_depth: 5,
            service_ns: 123.5,
            ..ShardMetrics::default()
        };
        m.latency.record(2);
        m.latency.record(4);
        let mut reg = obs::Registry::new();
        let labels = [("shard", "0")];
        m.register_into(&mut reg, &labels);
        // 18 counters + 2 gauges + 5 histogram stats. (The migration
        // metrics only register once incremental migration has run.)
        assert_eq!(reg.len(), 25);
        assert_eq!(reg.get_counter("service_submitted", &labels), Some(10));
        assert_eq!(reg.get_gauge("service_max_queue_depth", &labels), Some(5.0));
        assert_eq!(
            reg.get_counter("service_latency_ticks_count", &labels),
            Some(2)
        );
        assert_eq!(
            reg.get_gauge("service_latency_ticks_max", &labels),
            Some(4.0)
        );
    }

    mod properties {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// `merge` commutes, and quantiles of a merged histogram equal
            /// quantiles of recording every sample into one histogram —
            /// including samples beyond the tracked range (clamped tail).
            #[test]
            fn merge_and_quantile_commute(
                xs in vec(0u64..2048, 0..64),
                ys in vec(0u64..2048, 0..64),
            ) {
                let mut a = LatencyHistogram::default();
                let mut b = LatencyHistogram::default();
                let mut all = LatencyHistogram::default();
                for &x in &xs {
                    a.record(x);
                    all.record(x);
                }
                for &y in &ys {
                    b.record(y);
                    all.record(y);
                }
                let mut ab = a.clone();
                ab.merge(&b);
                let mut ba = b.clone();
                ba.merge(&a);
                prop_assert_eq!(&ab, &ba);
                for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    prop_assert_eq!(ab.quantile(q), all.quantile(q));
                    prop_assert_eq!(ba.quantile(q), all.quantile(q));
                }
                prop_assert_eq!(ab.count(), all.count());
                prop_assert_eq!(ab.max(), all.max());
                prop_assert_eq!(ab.mean().to_bits(), all.mean().to_bits());
            }
        }
    }

    #[test]
    fn migration_metrics_register_only_when_active() {
        let labels = [("shard", "0")];
        // Idle shard: the registry shape is exactly the pinned 25 entries.
        let idle = ShardMetrics::default();
        let mut reg = obs::Registry::new();
        idle.register_into(&mut reg, &labels);
        assert_eq!(reg.len(), 25);
        assert_eq!(reg.get_counter("service_migration_chunks", &labels), None);
        // A shard that pumped migration quanta grows the registry by 3.
        let active = ShardMetrics {
            migration_chunks: 4,
            migration_moved: 130,
            migration_backlog: 7,
            ..ShardMetrics::default()
        };
        let mut reg = obs::Registry::new();
        active.register_into(&mut reg, &labels);
        assert_eq!(reg.len(), 28);
        assert_eq!(
            reg.get_counter("service_migration_chunks", &labels),
            Some(4)
        );
        assert_eq!(
            reg.get_counter("service_migration_moved", &labels),
            Some(130)
        );
        assert_eq!(
            reg.get_gauge("service_migration_backlog", &labels),
            Some(7.0)
        );
    }

    #[test]
    fn arena_gauges_register_only_when_byte_tier_active() {
        let labels = [("shard", "0")];
        // Fixed tier (no byte batches): exactly the pinned 25 entries.
        let idle = ShardMetrics::default();
        let mut reg = obs::Registry::new();
        idle.register_into(&mut reg, &labels);
        assert_eq!(reg.len(), 25);
        assert_eq!(reg.get_counter("service_byte_batches", &labels), None);
        assert_eq!(reg.get_gauge("service_arena_pages", &labels), None);
        // A shard that flushed byte batches grows the registry by 4.
        let active = ShardMetrics {
            byte_batches: 2,
            arena_pages: 3,
            arena_live_bytes: 900,
            arena_frag_bytes: 60,
            ..ShardMetrics::default()
        };
        let mut reg = obs::Registry::new();
        active.register_into(&mut reg, &labels);
        assert_eq!(reg.len(), 29);
        assert_eq!(reg.get_counter("service_byte_batches", &labels), Some(2));
        assert_eq!(reg.get_gauge("service_arena_pages", &labels), Some(3.0));
        assert_eq!(
            reg.get_gauge("service_arena_live_bytes", &labels),
            Some(900.0)
        );
        assert_eq!(
            reg.get_gauge("service_arena_frag_bytes", &labels),
            Some(60.0)
        );
    }

    #[test]
    fn shard_metrics_rates() {
        let m = ShardMetrics {
            submitted: 100,
            admitted: 80,
            shed_overloaded: 15,
            shed_reads: 5,
            completed: 80,
            batches: 4,
            batched_requests: 80,
            service_ns: 8_000.0,
            ..ShardMetrics::default()
        };
        assert_eq!(m.shed_total(), 20);
        assert!((m.shed_rate() - 0.2).abs() < 1e-12);
        assert!((m.avg_batch_occupancy() - 20.0).abs() < 1e-12);
        assert!((m.mops() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_rendering_is_deterministic() {
        let mut metrics = ServiceMetrics::new(2);
        metrics.per_shard[0].submitted = 10;
        metrics.per_shard[0].completed = 9;
        metrics.per_shard[0].latency.record(2);
        metrics.per_shard[1].submitted = 5;
        let make = || {
            let rows: Vec<SnapshotRow> = metrics
                .per_shard
                .iter()
                .enumerate()
                .map(|(i, m)| SnapshotRow {
                    label: format!("shard {i}"),
                    keys: 7,
                    fill: 0.5,
                    queue_depth: 1,
                    m: m.clone(),
                })
                .collect();
            let total = SnapshotRow {
                label: "total".to_string(),
                keys: 14,
                fill: 0.5,
                queue_depth: 2,
                m: metrics.total(),
            };
            Snapshot {
                shards: rows,
                total,
                clock: 3,
            }
        };
        assert_eq!(make().to_csv(), make().to_csv());
        assert_eq!(make().to_text(), make().to_text());
        let csv = make().to_csv();
        assert_eq!(csv.lines().count(), 4, "header + 2 shards + total");
        assert!(csv.starts_with("shard,keys"));
    }
}
