//! **Figure 8** — "Throughput of all compared approaches under the static
//! setting": insert the whole dataset, then 1 M random finds, for every
//! dataset × {CUDPP, MegaKV, Slab, DyCuckoo} at the default filled factor
//! (θ = 85%).
//!
//! Paper shape to reproduce: DyCuckoo best at insert (more alternative
//! buckets → fewer evictions); MegaKV best at find (exactly two direct
//! bucket probes, no pair-hash layer); Slab trails both once chains grow;
//! CUDPP slowest overall (uncoalesced per-slot probes).

use bench::driver::{build_static, run_static, Scheme};
use bench::report::{fmt_mops, Table};
use bench::{scale, seed};
use gpu_sim::SimContext;
use workloads::paper_datasets;

fn main() {
    let scale = scale();
    let seed = seed();
    let theta = 0.85;
    let n_queries = (1_000_000.0 * scale).round() as usize;
    println!("Figure 8: static insert/find throughput (Mops), scale={scale}, θ={theta}");

    let mut insert_tbl = Table::new(&["dataset", "CUDPP", "MegaKV", "Slab", "DyCuckoo"]);
    let mut find_tbl = Table::new(&["dataset", "CUDPP", "MegaKV", "Slab", "DyCuckoo"]);

    for spec in paper_datasets() {
        let ds = spec.scaled(scale).generate(seed);
        let mut insert_row = vec![spec.name.to_string()];
        let mut find_row = vec![spec.name.to_string()];
        for scheme in Scheme::static_set() {
            let mut sim = SimContext::new();
            let mut table = build_static(scheme, ds.unique_keys, theta, seed, &mut sim);
            let r = run_static(table.as_mut(), &mut sim, &ds, n_queries, seed ^ 0xF1);
            insert_row.push(fmt_mops(r.insert.mops));
            find_row.push(fmt_mops(r.find.mops));
        }
        insert_tbl.row(insert_row);
        find_tbl.row(find_row);
    }

    insert_tbl.print("Figure 8 (left): INSERT throughput, Mops");
    find_tbl.print("Figure 8 (right): FIND throughput, Mops");
}
