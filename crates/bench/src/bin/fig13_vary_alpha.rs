//! **Figure 13** — "Throughput for varying α": the dynamic workload with
//! the filled-factor lower bound α ∈ {20% … 40%} (β = 85%, r = 0.2),
//! comparing MegaKV and DyCuckoo (Slab cannot bound its filled factor).
//!
//! Paper shape to reproduce: MegaKV's overhead grows with α (higher lower
//! bound ⇒ more downsizings, each a full rehash); DyCuckoo is barely
//! affected (incremental one-subtable resizes).

use bench::driver::{build_dynamic, run_dynamic, Scheme};
use bench::report::{fmt_mops, Table};
use bench::{scale, seed};
use gpu_sim::SimContext;
use workloads::{paper_datasets, DynamicWorkload};

fn main() {
    let scale = scale();
    let seed = seed();
    let batch = ((1_000_000.0 * scale).round() as usize).max(1000);
    println!("Figure 13: dynamic throughput vs α (β=0.85, r=0.2, batch={batch}, scale={scale})");

    for spec in paper_datasets() {
        let ds = spec.scaled(scale).generate(seed);
        let w = DynamicWorkload::build(&ds, batch, 0.2, seed);
        let mut t = Table::new(&["alpha", "MegaKV", "DyCuckoo"]);
        for alpha in [0.20, 0.25, 0.30, 0.35, 0.40] {
            let mut row = vec![format!("{:.0}%", alpha * 100.0)];
            for scheme in [Scheme::MegaKv, Scheme::DyCuckoo] {
                let mut sim = SimContext::new();
                let mut table = build_dynamic(scheme, alpha, 0.85, batch, seed, &mut sim);
                let res = run_dynamic(table.as_mut(), &mut sim, &w);
                row.push(fmt_mops(res.mops));
            }
            t.row(row);
        }
        t.print(&format!("Figure 13 [{}]: overall Mops vs α", spec.name));
    }
}
