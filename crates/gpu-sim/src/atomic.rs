//! Bucket locks with `atomicCAS`/`atomicExch` semantics and per-round
//! conflict accounting.
//!
//! The paper locks a bucket with `atomicCAS(&lock, 0, 1)` and unlocks with
//! `atomicExch(&lock, 0)`. On real hardware, atomics to the *same* address
//! serialize; the paper's profiling figure shows throughput collapsing as
//! the number of conflicting atomics grows. We reproduce both effects:
//!
//! * [`Locks`] holds one lock flag per bucket. A lock acquired during a
//!   scheduler round stays visibly held until the **end of the round**, so
//!   other warps executing "simultaneously" in the same round observe the
//!   conflict and fail their CAS — this is what drives the voter scheme's
//!   re-votes.
//! * [`RoundCtx`] groups atomics by address within a round. Atomics to
//!   distinct addresses proceed in parallel; atomics to one address
//!   serialize, so the round's latency tail is the *largest* conflict
//!   group — charged to [`crate::Metrics::atomic_serial_units`]. Combined
//!   with the uncontended throughput term in the cost model, this
//!   reproduces the profiling figure: flat at low conflict counts, then
//!   degrading linearly in the conflict degree.

use std::collections::HashMap;

use crate::metrics::{ChargeKind, Metrics};

/// A table of per-bucket lock flags with deferred (end-of-round) release.
#[derive(Debug, Clone, Default)]
pub struct Locks {
    held: Vec<bool>,
    pending_unlock: Vec<u32>,
}

impl Locks {
    /// Create `n` unlocked locks (one per bucket).
    pub fn new(n: usize) -> Self {
        Self {
            held: vec![false; n],
            pending_unlock: Vec::new(),
        }
    }

    /// Number of locks.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// Whether there are no locks at all.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Whether lock `i` is currently held.
    pub fn is_held(&self, i: usize) -> bool {
        self.held[i]
    }

    /// `atomicCAS(&lock[i], 0, 1)`: returns `true` iff the lock was free and
    /// is now held by the caller.
    fn try_acquire(&mut self, i: usize) -> bool {
        if self.held[i] {
            false
        } else {
            self.held[i] = true;
            true
        }
    }

    /// `atomicExch(&lock[i], 0)`: schedule the release for the end of the
    /// current round. The lock remains visibly held until [`Locks::end_round`]
    /// so that warps interleaved later in the same round still observe the
    /// conflict, as they would under true concurrency.
    fn release_deferred(&mut self, i: usize) {
        debug_assert!(self.held[i], "releasing a lock that is not held");
        self.pending_unlock.push(i as u32);
    }

    /// Flush deferred releases. Must be called once per scheduler round; the
    /// [`crate::scheduler::run_rounds`] driver does this via its round hook.
    pub fn end_round(&mut self) {
        for i in self.pending_unlock.drain(..) {
            self.held[i as usize] = false;
        }
    }

    /// True if no lock is held and no release is pending — the quiescent
    /// state between kernels.
    pub fn all_free(&self) -> bool {
        self.pending_unlock.is_empty() && !self.held.iter().any(|&h| h)
    }
}

/// Per-round context: accumulates metrics and groups atomic conflicts.
///
/// One `RoundCtx` lives for one scheduler round. Dropping it without calling
/// [`RoundCtx::finish`] loses the round's atomic cost accounting, so the
/// scheduler always finishes it explicitly.
#[derive(Debug)]
pub struct RoundCtx<'a> {
    /// Metrics of the executing kernel.
    pub metrics: &'a mut Metrics,
    /// Atomic attempts per (address-space, index) address this round.
    conflicts: HashMap<u64, u32>,
}

impl<'a> RoundCtx<'a> {
    /// Start a round.
    pub fn new(metrics: &'a mut Metrics) -> Self {
        Self {
            metrics,
            conflicts: HashMap::new(),
        }
    }

    #[inline]
    fn record_atomic(&mut self, space: u32, index: usize) {
        let addr = ((space as u64) << 40) | index as u64;
        *self.conflicts.entry(addr).or_insert(0) += 1;
        self.metrics.charge(ChargeKind::AtomicOps, 1);
    }

    /// Issue an `atomicCAS` lock acquisition on `locks[index]`. `space`
    /// disambiguates lock tables (e.g. one per subtable) for conflict
    /// grouping. Returns whether the lock was acquired.
    pub fn atomic_cas_lock(&mut self, locks: &mut Locks, space: u32, index: usize) -> bool {
        self.record_atomic(space, index);
        let ok = locks.try_acquire(index);
        if !ok {
            self.metrics.charge(ChargeKind::LockFailures, 1);
            if obs::is_enabled() {
                obs::emit(obs::Event::LockConflict {
                    space,
                    index: index as u64,
                });
            }
        }
        ok
    }

    /// Issue an `atomicExch` unlock on `locks[index]`. The release becomes
    /// visible at the end of the round.
    pub fn atomic_exch_unlock(&mut self, locks: &mut Locks, space: u32, index: usize) {
        self.record_atomic(space, index);
        locks.release_deferred(index);
    }

    /// Record a raw atomic to an arbitrary address (used by the atomic
    /// microbenchmark and by baselines that use `atomicExch` on slots
    /// directly rather than bucket locks).
    pub fn raw_atomic(&mut self, space: u32, index: usize) {
        self.record_atomic(space, index);
    }

    /// Charge one coalesced read transaction that probes a bucket.
    #[inline]
    pub fn read_bucket(&mut self) {
        self.metrics.charge(ChargeKind::ReadTx, 1);
        self.metrics.charge(ChargeKind::Lookups, 1);
    }

    /// Charge one coalesced read transaction that is not a bucket probe
    /// (e.g. fetching a value line after a key hit).
    #[inline]
    pub fn read_line(&mut self) {
        self.metrics.charge(ChargeKind::ReadTx, 1);
    }

    /// Charge one coalesced write transaction.
    #[inline]
    pub fn write_line(&mut self) {
        self.metrics.charge(ChargeKind::WriteTx, 1);
    }

    /// Charge one uncoalesced single-slot read (full line fetched, mostly
    /// wasted). Per-slot schemes like CUDPP probe this way.
    #[inline]
    pub fn read_slot(&mut self) {
        self.metrics.charge(ChargeKind::RandomReadTx, 1);
        self.metrics.charge(ChargeKind::Lookups, 1);
    }

    /// Charge one uncoalesced single-slot write.
    #[inline]
    pub fn write_slot(&mut self) {
        self.metrics.charge(ChargeKind::RandomWriteTx, 1);
    }

    /// Charge one pointer-chased line read (chain traversal step whose
    /// address depends on the previous load).
    #[inline]
    pub fn read_chained(&mut self) {
        self.metrics.charge(ChargeKind::DependentReadTx, 1);
        self.metrics.charge(ChargeKind::Lookups, 1);
    }

    /// Lock failures accumulated so far (including previous rounds of the
    /// same kernel). The scheduler samples this around each warp step to
    /// feed contention-aware schedule policies.
    #[inline]
    pub fn lock_failures(&self) -> u64 {
        self.metrics.lock_failures
    }

    /// Close the round: atomics to distinct addresses ran in parallel, so
    /// the round's serial tail is the largest conflict group.
    pub fn finish(self) {
        let worst = self.conflicts.values().copied().max().unwrap_or(0);
        self.metrics
            .charge(ChargeKind::AtomicSerialUnits, worst as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_acquires_free_lock_and_fails_on_held() {
        let mut m = Metrics::default();
        let mut locks = Locks::new(4);
        let mut ctx = RoundCtx::new(&mut m);
        assert!(ctx.atomic_cas_lock(&mut locks, 0, 2));
        assert!(!ctx.atomic_cas_lock(&mut locks, 0, 2));
        ctx.finish();
        assert_eq!(m.atomic_ops, 2);
        assert_eq!(m.lock_failures, 1);
        // Two conflicting atomics to one address serialize: tail of 2.
        assert_eq!(m.atomic_serial_units, 2);
    }

    #[test]
    fn unlock_is_deferred_to_end_of_round() {
        let mut m = Metrics::default();
        let mut locks = Locks::new(1);
        {
            let mut ctx = RoundCtx::new(&mut m);
            assert!(ctx.atomic_cas_lock(&mut locks, 0, 0));
            ctx.atomic_exch_unlock(&mut locks, 0, 0);
            // Still held: a later warp in the same round must see the conflict.
            assert!(!ctx.atomic_cas_lock(&mut locks, 0, 0));
            ctx.finish();
        }
        locks.end_round();
        assert!(locks.all_free());
        let mut ctx = RoundCtx::new(&mut m);
        assert!(ctx.atomic_cas_lock(&mut locks, 0, 0));
        ctx.finish();
    }

    #[test]
    fn uncontended_atomics_have_unit_serial_tail() {
        // Eight atomics to eight distinct addresses run in parallel: the
        // round's serial tail is 1, regardless of count.
        let mut m = Metrics::default();
        let mut locks = Locks::new(8);
        let mut ctx = RoundCtx::new(&mut m);
        for i in 0..8 {
            assert!(ctx.atomic_cas_lock(&mut locks, 0, i));
        }
        ctx.finish();
        assert_eq!(m.atomic_ops, 8);
        assert_eq!(m.atomic_serial_units, 1);
    }

    #[test]
    fn serial_tail_is_the_largest_conflict_group() {
        let mut m = Metrics::default();
        let mut ctx = RoundCtx::new(&mut m);
        for _ in 0..10 {
            ctx.raw_atomic(1, 5);
        }
        for _ in 0..3 {
            ctx.raw_atomic(1, 6);
        }
        ctx.finish();
        assert_eq!(m.atomic_serial_units, 10);
    }

    #[test]
    fn different_spaces_do_not_conflict() {
        let mut m = Metrics::default();
        let mut ctx = RoundCtx::new(&mut m);
        ctx.raw_atomic(0, 7);
        ctx.raw_atomic(1, 7);
        ctx.finish();
        assert_eq!(m.atomic_serial_units, 1);
    }

    #[test]
    fn serial_units_accumulate_across_rounds() {
        let mut m = Metrics::default();
        for _ in 0..4 {
            let mut ctx = RoundCtx::new(&mut m);
            ctx.raw_atomic(0, 0);
            ctx.raw_atomic(0, 0);
            ctx.finish();
        }
        assert_eq!(m.atomic_serial_units, 8);
    }

    #[test]
    fn read_write_charges() {
        let mut m = Metrics::default();
        let mut ctx = RoundCtx::new(&mut m);
        ctx.read_bucket();
        ctx.read_line();
        ctx.write_line();
        ctx.read_slot();
        ctx.write_slot();
        ctx.finish();
        assert_eq!(m.read_transactions, 2);
        assert_eq!(m.write_transactions, 1);
        assert_eq!(m.random_read_transactions, 1);
        assert_eq!(m.random_write_transactions, 1);
        assert_eq!(m.lookups, 2);
    }
}
