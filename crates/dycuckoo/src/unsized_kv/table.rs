//! The unsized table: two-subtable cuckoo hashing over `(KeyRepr, ValRepr)`
//! slot words, with all spilled bytes in the [`ByteArena`].
//!
//! Structure mirrors the fixed-width [`crate::DyCuckoo`] at `d = 2`: every
//! key has exactly one candidate bucket in each of two subtables (the
//! two-lookup bound), inserts evict on full buckets with a bounded chain,
//! and insertion failure triggers growing the fuller subtable — either
//! stop-the-world (`migration_quantum = usize::MAX`) or incrementally, a
//! bounded chunk of buckets per pump, with foreground operations routed
//! around the drain cursor exactly like the fixed tier's
//! [`crate::table::migration`].
//!
//! What is new relative to the fixed tier:
//!
//! * Probes compare **slot words**, not raw keys. Inline keys (≤ 12 bytes)
//!   are compared by word equality — zero arena traffic. Spilled keys are
//!   pre-filtered by the word's 16-bit fingerprint and length; only a slot
//!   that passes the filter pays `ceil(len/128)` arena read lines for the
//!   byte comparison, so a probe is still one bucket line in the common
//!   case (the two-lookup bound survives).
//! * Eviction chains never touch the arena: the displaced slot words carry
//!   their handles with them, and a spilled word's embedded `h48` re-routes
//!   it without dereferencing its bytes.
//! * The migration drain re-homes each moved entry's spilled blobs, so
//!   arena pages empty out **incrementally alongside buckets** and fully
//!   dead pages are released mid-migration.
//!
//! All line charges flow through the configured [`LayoutConfig`] (default
//! SoA with 8 × 16-byte key words — exactly one key line per probe, the
//! same as the u32 tier) plus the arena's explicit blob-line charges.

use gpu_sim::ChargeKind;
use gpu_sim::{
    ballot, run_rounds_quantum, run_rounds_with, BucketStore, LayoutConfig, RoundCtx, RoundKernel,
    SchedulePolicy, SimContext, StepOutcome, WARP_SIZE,
};

use crate::error::{Error, Result};
use crate::hashfn::splitmix64;
use crate::ops::{nth_active_lane, pack_warps};
use crate::rmw::MergeRule;

use super::arena::{charge_blob_read, charge_blob_write, ByteArena, PAGE_BYTES};
use super::encoding::{
    decode_key, decode_val, encode_inline_key, encode_inline_val, encode_spill_key,
    encode_spill_val, fingerprint, h48, hash_bytes, KeyRepr, SpillRef, ValRepr, INLINE_KEY_MAX,
    INLINE_VAL_MAX, MAX_BLOB_LEN, SPILL_TAG,
};

/// A subtable of the unsized tier: 16-byte key words, 8-byte value words.
pub type UnsizedStore = BucketStore<u128, u64>;

/// Number of subtables (fixed: one candidate bucket in each).
const SUBTABLES: usize = 2;
/// Lock address space of a growing subtable's fresh side.
const FRESH_SPACE_BASE: u32 = SUBTABLES as u32;
/// Upsizings a single batch may trigger before reporting `InsertStuck`.
const MAX_RESIZES_PER_BATCH: u64 = 8;

/// Configuration of an [`UnsizedTable`].
#[derive(Debug, Clone, Copy)]
pub struct UnsizedConfig {
    /// Initial buckets per subtable.
    pub n_buckets: usize,
    /// Seed for hash salts and eviction coin flips.
    pub seed: u64,
    /// Warp schedule for every kernel launch.
    pub schedule: SchedulePolicy,
    /// Bucket layout; `key_bytes` must be 16 and `val_bytes` 8.
    pub layout: LayoutConfig,
    /// Eviction-chain length that triggers an upsize.
    pub eviction_limit: u32,
    /// Filled factor above which the fuller subtable grows proactively.
    pub max_load: f64,
    /// Source buckets drained per migration pump (`usize::MAX` =
    /// stop-the-world).
    pub migration_quantum: usize,
    /// Arena page payload bytes.
    pub page_bytes: u32,
}

impl Default for UnsizedConfig {
    fn default() -> Self {
        Self {
            n_buckets: 8,
            seed: 0xD1C2_B3A4,
            schedule: SchedulePolicy::FixedOrder,
            layout: LayoutConfig::soa(8, 16, 8),
            eviction_limit: 16,
            max_load: 0.85,
            migration_quantum: usize::MAX,
            page_bytes: PAGE_BYTES,
        }
    }
}

impl UnsizedConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        self.layout.validate().map_err(Error::InvalidConfig)?;
        if self.layout.key_bytes != 16 || self.layout.val_bytes != 8 {
            return Err(Error::InvalidConfig(format!(
                "unsized tier needs 16-byte key and 8-byte value words, got {}/{}",
                self.layout.key_bytes, self.layout.val_bytes
            )));
        }
        if self.n_buckets == 0 {
            return Err(Error::InvalidConfig("n_buckets must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.max_load) || self.max_load == 0.0 {
            return Err(Error::InvalidConfig(format!(
                "max_load must be in (0, 1], got {}",
                self.max_load
            )));
        }
        if self.eviction_limit == 0 {
            return Err(Error::InvalidConfig("eviction_limit must be ≥ 1".into()));
        }
        if self.page_bytes < 8 || !self.page_bytes.is_multiple_of(8) || self.page_bytes > 1 << 16 {
            return Err(Error::InvalidConfig(format!(
                "page_bytes must be a multiple of 8 in [8, 65536], got {}",
                self.page_bytes
            )));
        }
        Ok(())
    }
}

/// Counters of one batched call (and the maintenance it triggered).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UnsizedReport {
    /// Entries placed into empty slots.
    pub inserted: u64,
    /// Entries whose value was replaced in place.
    pub updated: u64,
    /// Entries removed.
    pub deleted: u64,
    /// Operations re-run after an upsize.
    pub retries: u64,
    /// Upsizings started by this batch.
    pub resizes: u64,
    /// Source buckets drained by migration pumps inside this call.
    pub migrated_buckets: u64,
    /// Entries rehashed by migration pumps inside this call.
    pub migrated_kvs: u64,
    /// Spilled bytes re-homed by migration pumps inside this call.
    pub migrated_blob_bytes: u64,
}

impl UnsizedReport {
    /// Fold another report into this one.
    pub fn merge(&mut self, o: &UnsizedReport) {
        self.inserted += o.inserted;
        self.updated += o.updated;
        self.deleted += o.deleted;
        self.retries += o.retries;
        self.resizes += o.resizes;
        self.migrated_buckets += o.migrated_buckets;
        self.migrated_kvs += o.migrated_kvs;
        self.migrated_blob_bytes += o.migrated_blob_bytes;
    }
}

/// Point-in-time observability snapshot (feeds the `arena_*` gauges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnsizedStats {
    /// Live entries.
    pub entries: u64,
    /// Total slots across both subtables (and the fresh side, mid-drain).
    pub capacity_slots: u64,
    /// Overall filled factor.
    pub fill_factor: f64,
    /// Arena pages currently allocated.
    pub arena_pages: u64,
    /// Arena bytes referenced by live handles.
    pub arena_live_bytes: u64,
    /// Arena bytes freed but not yet reused (fragmentation).
    pub arena_frag_bytes: u64,
    /// Device bytes held (buckets + locks + arena).
    pub device_bytes: u64,
    /// Source buckets not yet drained (0 when no migration is in flight).
    pub migration_backlog: u64,
}

/// In-flight incremental upsize of one subtable.
#[derive(Debug)]
struct Drain {
    table: usize,
    fresh: UnsizedStore,
    cursor: usize,
    span: usize,
}

/// Routing snapshot of the drain, consulted by every kernel.
#[derive(Debug, Clone, Copy)]
struct UView {
    table: usize,
    cursor: usize,
    old_n: usize,
    new_n: usize,
}

impl Drain {
    fn view(&self) -> UView {
        UView {
            table: self.table,
            cursor: self.cursor,
            old_n: self.span,
            new_n: self.fresh.n_buckets(),
        }
    }
}

/// Host-precomputed per-key probe state (in registers on a real GPU).
#[derive(Debug, Clone, Copy)]
struct Query {
    h48: u64,
    fp: u16,
    /// The whole key as one slot word, when it fits inline.
    inline: Option<u128>,
}

fn query(key: &[u8]) -> Query {
    let h = hash_bytes(key);
    Query {
        h48: h48(h),
        fp: fingerprint(h),
        inline: (key.len() <= INLINE_KEY_MAX).then(|| encode_inline_key(key)),
    }
}

#[inline]
fn raw_of(salt: u64, h48: u64) -> u64 {
    splitmix64(h48 ^ salt)
}

#[inline]
fn bucket_of(salt: u64, h48: u64, n: usize) -> usize {
    (raw_of(salt, h48) % n as u64) as usize
}

/// The `h48` a stored key word re-routes by: read from a spill word, or
/// recomputed from the inline bytes (register arithmetic, never memory).
fn word_h48(w: u128) -> u64 {
    match decode_key(w) {
        KeyRepr::Inline { len, bytes } => h48(hash_bytes(&bytes[..len as usize])),
        KeyRepr::Spill { h48, .. } => h48,
    }
}

/// Fingerprint-lane hash of a stored key word. Must be stable for a given
/// *logical* key: inline words are the key itself, but spill handles are
/// re-homed (page/off change) by migration drains, so a spill word hashes
/// its full 64-bit stable hash `(fp16 << 48) | h48` and never its handle
/// bits. Installed into every [`UnsizedStore`] via `set_fp_fn`.
fn word_fp_hash(w: u128) -> u64 {
    match decode_key(w) {
        KeyRepr::Inline { .. } => splitmix64((w ^ (w >> 64)) as u64),
        KeyRepr::Spill { fp, h48, .. } => ((fp as u64) << 48) | h48,
    }
}

/// The query-side mirror of [`word_fp_hash`]: what the stored word's lane
/// hash will be, computed without knowing the arena handle.
fn query_fp_hash(q: &Query) -> u64 {
    match q.inline {
        Some(w) => splitmix64((w ^ (w >> 64)) as u64),
        None => ((q.fp as u64) << 48) | q.h48,
    }
}

/// Fingerprint-gated probe wrapper around [`match_slot`], charged like
/// [`BucketStore::probe_find`]: a gate rejection reads only the
/// fingerprint line; a pass pays the key lines and scans as before.
fn probe_match(
    store: &UnsizedStore,
    arena: &ByteArena,
    layout: &LayoutConfig,
    b: usize,
    q: &Query,
    key: &[u8],
    ctx: &mut RoundCtx,
) -> Option<usize> {
    if !store.fp_active() {
        layout.charge_probe(ctx);
        return match_slot(store, arena, b, q, key, ctx);
    }
    layout.charge_fp_probe(ctx);
    let fp = store.fp_of_hash(query_fp_hash(q));
    if !store.bucket_fps(b).contains(&fp) {
        debug_assert!(
            match_slot_uncharged(store, arena, b, q, key).is_none(),
            "fingerprint false negative"
        );
        return None;
    }
    layout.charge_fp_confirm(ctx);
    match_slot(store, arena, b, q, key, ctx)
}

/// [`match_slot`] without line charges (debug assertions only).
fn match_slot_uncharged(
    store: &UnsizedStore,
    arena: &ByteArena,
    b: usize,
    q: &Query,
    key: &[u8],
) -> Option<usize> {
    let mut m = gpu_sim::Metrics::default();
    let mut ctx = RoundCtx::new(&mut m);
    let r = match_slot(store, arena, b, q, key, &mut ctx);
    ctx.finish();
    r
}

/// Where a key of subtable `t` lives: `(bucket, lock_space, in_fresh)`.
fn locate(
    salts: &[u64; SUBTABLES],
    tables: &[UnsizedStore; SUBTABLES],
    view: Option<UView>,
    t: usize,
    h48: u64,
) -> (usize, u32, bool) {
    if let Some(v) = view {
        if v.table == t {
            let b_old = bucket_of(salts[t], h48, v.old_n);
            return if b_old < v.cursor {
                (
                    bucket_of(salts[t], h48, v.new_n),
                    FRESH_SPACE_BASE + t as u32,
                    true,
                )
            } else {
                (b_old, t as u32, false)
            };
        }
    }
    (
        bucket_of(salts[t], h48, tables[t].n_buckets()),
        t as u32,
        false,
    )
}

/// Scan bucket `b` for the query key. Inline queries compare words; spill
/// queries fingerprint-filter first and charge an arena read only for
/// slots that pass — the second "lookup" of the two-lookup bound.
fn match_slot(
    store: &UnsizedStore,
    arena: &ByteArena,
    b: usize,
    q: &Query,
    key: &[u8],
    ctx: &mut RoundCtx,
) -> Option<usize> {
    if let Some(w) = q.inline {
        return store.find_slot(b, w);
    }
    for (s, &w) in store.bucket_keys(b).iter().enumerate() {
        if (w & 0xFF) as u8 != SPILL_TAG {
            continue;
        }
        if let KeyRepr::Spill { fp, blob, .. } = decode_key(w) {
            if fp == q.fp && blob.len as usize == key.len() {
                charge_blob_read(ctx, blob.len);
                if arena.bytes_eq(blob, key) {
                    return Some(s);
                }
            }
        }
    }
    None
}

/// Encode `(key, val)` into slot words, spilling long payloads into the
/// arena (charged as blob writes).
fn encode_entry(
    arena: &mut ByteArena,
    q: &Query,
    key: &[u8],
    val: &[u8],
    ctx: &mut RoundCtx,
) -> (u128, u64) {
    let kw = match q.inline {
        Some(w) => w,
        None => {
            charge_blob_write(ctx, key.len() as u32);
            encode_spill_key(q.fp, arena.alloc(key), q.h48)
        }
    };
    (kw, encode_value(arena, val, ctx))
}

fn encode_value(arena: &mut ByteArena, val: &[u8], ctx: &mut RoundCtx) -> u64 {
    if val.len() <= INLINE_VAL_MAX {
        encode_inline_val(val)
    } else {
        charge_blob_write(ctx, val.len() as u32);
        encode_spill_val(arena.alloc(val))
    }
}

/// Free whatever arena bytes a slot's words reference.
fn free_entry(arena: &mut ByteArena, kw: u128, vw: u64) {
    if let Some(blob) = decode_key(kw).spill() {
        arena.free(blob);
    }
    if let Some(blob) = decode_val(vw).spill() {
        arena.free(blob);
    }
}

// ---------------------------------------------------------------------------
// Find kernel (warp-centric, lock-free — mirrors `ops::find`).
// ---------------------------------------------------------------------------

struct FindWarp {
    idxs: Vec<usize>,
    cur: usize,
    cand: usize,
}

struct FindKernel<'a> {
    tables: &'a [UnsizedStore; SUBTABLES],
    arena: &'a ByteArena,
    salts: &'a [u64; SUBTABLES],
    layout: LayoutConfig,
    migration: Option<(UView, &'a UnsizedStore)>,
    keys: &'a [&'a [u8]],
    queries: &'a [Query],
    results: &'a mut [Option<Vec<u8>>],
}

impl RoundKernel<FindWarp> for FindKernel<'_> {
    fn step(&mut self, warp: &mut FindWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let Some(&idx) = warp.idxs.get(warp.cur) else {
            return StepOutcome::Done;
        };
        let (q, key) = (&self.queries[idx], self.keys[idx]);
        let t = warp.cand;
        let (b, _, in_fresh) = locate(
            self.salts,
            self.tables,
            self.migration.map(|(v, _)| v),
            t,
            q.h48,
        );
        let store = if in_fresh {
            self.migration.as_ref().expect("fresh without migration").1
        } else {
            &self.tables[t]
        };
        if let Some(slot) = probe_match(store, self.arena, &self.layout, b, q, key, ctx) {
            self.layout.charge_value_read(ctx);
            let vw = store.bucket_vals(b)[slot];
            let bytes = match decode_val(vw) {
                ValRepr::Inline { len, bytes } => bytes[..len as usize].to_vec(),
                ValRepr::Spill(blob) => {
                    charge_blob_read(ctx, blob.len);
                    self.arena.read(blob)
                }
            };
            self.results[idx] = Some(bytes);
            if obs::is_enabled() {
                obs::emit(obs::Event::OpRetired {
                    kind: obs::OpKind::Find,
                    op: idx as u64,
                    key: q.h48,
                    outcome: obs::OpOutcome::Hit,
                    probes: warp.cand as u32 + 1,
                    evict_depth: 0,
                    lock_waits: 0,
                });
            }
            warp.cur += 1;
            warp.cand = 0;
        } else {
            warp.cand += 1;
            if warp.cand == SUBTABLES {
                if obs::is_enabled() {
                    obs::emit(obs::Event::OpRetired {
                        kind: obs::OpKind::Find,
                        op: idx as u64,
                        key: q.h48,
                        outcome: obs::OpOutcome::Miss,
                        probes: SUBTABLES as u32,
                        evict_depth: 0,
                        lock_waits: 0,
                    });
                }
                warp.cur += 1;
                warp.cand = 0;
            }
        }
        if warp.cur == warp.idxs.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Insert kernel (leader-vote, one bucket lock per step — mirrors
// `ops::insert` with d = 2 and word-carried eviction chains).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum InsPhase {
    /// Probe subtable `t` for an existing key (fresh ops only).
    Lookup(usize),
    /// Place into (or evict from) subtable `t`.
    Place(usize),
}

#[derive(Debug, Clone, Copy)]
struct InsOp {
    /// Batch index (drives result routing and the eviction coin flips).
    idx: usize,
    salt: u64,
    phase: InsPhase,
    /// Once evicting (or on a retry), the op carries slot words instead of
    /// batch bytes: `(key_word, val_word, h48)`.
    carried: Option<(u128, u64, u64)>,
    evictions: u32,
}

struct InsWarp {
    ops: Vec<InsOp>,
    active: u32,
    rr: usize,
}

impl InsWarp {
    fn new(ops: Vec<InsOp>) -> Self {
        debug_assert!(ops.len() <= WARP_SIZE);
        let active = if ops.len() == 32 {
            u32::MAX
        } else {
            (1u32 << ops.len()) - 1
        };
        Self { ops, active, rr: 0 }
    }
}

#[derive(Default)]
struct InsOut {
    inserted: u64,
    updated: u64,
    /// Eviction chains that exceeded the limit: carried words the caller
    /// re-runs after growing (their arena blobs stay allocated and valid).
    failed: Vec<(u128, u64, u64)>,
}

struct InsertKernel<'a> {
    tables: &'a mut [UnsizedStore; SUBTABLES],
    arena: &'a mut ByteArena,
    salts: &'a [u64; SUBTABLES],
    layout: LayoutConfig,
    eviction_limit: u32,
    seed: u64,
    migration: Option<(UView, &'a mut UnsizedStore)>,
    pairs: &'a [(&'a [u8], &'a [u8])],
    queries: &'a [Query],
    /// Merge applied to fresh ops: absent keys store `rule.initial_bytes`,
    /// present keys `rule.merge_bytes` under the bucket lock. Carried
    /// (evicted) words pass through literally — they were materialized when
    /// first placed, so eviction chains never re-apply the merge.
    rule: MergeRule,
    kind: obs::OpKind,
    out: InsOut,
}

impl InsertKernel<'_> {
    fn view(&self) -> Option<UView> {
        self.migration.as_ref().map(|(v, _)| *v)
    }

    fn store(&mut self, t: usize, in_fresh: bool) -> &mut UnsizedStore {
        if in_fresh {
            self.migration.as_mut().expect("fresh without migration").1
        } else {
            &mut self.tables[t]
        }
    }

    fn store_ro(&self, t: usize, in_fresh: bool) -> &UnsizedStore {
        if in_fresh {
            self.migration.as_ref().expect("fresh without migration").1
        } else {
            &self.tables[t]
        }
    }

    /// The op's routing hash: from its query (fresh) or carried word.
    fn op_h48(&self, op: &InsOp) -> u64 {
        match op.carried {
            Some((_, _, h)) => h,
            None => self.queries[op.idx].h48,
        }
    }

    /// Materialize the op's slot words (encoding fresh bytes on first
    /// placement; carried words pass through).
    fn words_of(&mut self, op: &InsOp, ctx: &mut RoundCtx) -> (u128, u64) {
        match op.carried {
            Some((kw, vw, _)) => (kw, vw),
            None => {
                let (key, val) = self.pairs[op.idx];
                let stored = self.rule.initial_bytes(val);
                encode_entry(self.arena, &self.queries[op.idx], key, &stored, ctx)
            }
        }
    }

    fn retire(&self, op: &InsOp, outcome: obs::OpOutcome) {
        if obs::is_enabled() {
            obs::emit(obs::Event::OpRetired {
                kind: self.kind,
                op: op.salt,
                key: self.op_h48(op),
                outcome,
                probes: 0,
                evict_depth: op.evictions,
                lock_waits: 0,
            });
        }
    }
}

impl RoundKernel<InsWarp> for InsertKernel<'_> {
    fn step(&mut self, warp: &mut InsWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let mask = ballot(|l| warp.active & (1 << l) != 0);
        if mask == 0 {
            return StepOutcome::Done;
        }
        let leader = nth_active_lane(mask, warp.rr);
        let op = warp.ops[leader];
        let h = self.op_h48(&op);

        match op.phase {
            InsPhase::Lookup(t) => {
                let (b, space, in_fresh) = locate(self.salts, self.tables, self.view(), t, h);
                if !ctx.atomic_cas_lock(&mut self.store(t, in_fresh).locks, space, b) {
                    warp.rr += 1; // revote
                    return StepOutcome::Pending;
                }
                let (key, val) = self.pairs[op.idx];
                let q = self.queries[op.idx];
                let found = probe_match(
                    self.store_ro(t, in_fresh),
                    self.arena,
                    &self.layout,
                    b,
                    &q,
                    key,
                    ctx,
                );
                if let Some(slot) = found {
                    // Present: merge (reading the old bytes when the rule
                    // needs them), free the old value's bytes, store the new.
                    let old_vw = self.store_ro(t, in_fresh).bucket_vals(b)[slot];
                    let merged;
                    let stored: &[u8] = if self.rule.reads_old() {
                        self.layout.charge_value_read(ctx);
                        let old = match decode_val(old_vw) {
                            ValRepr::Inline { len, bytes } => bytes[..len as usize].to_vec(),
                            ValRepr::Spill(blob) => {
                                charge_blob_read(ctx, blob.len);
                                self.arena.read(blob)
                            }
                        };
                        merged = self.rule.merge_bytes(&old, val);
                        &merged
                    } else {
                        val
                    };
                    if let Some(blob) = decode_val(old_vw).spill() {
                        self.arena.free(blob);
                    }
                    let vw = encode_value(self.arena, stored, ctx);
                    self.store(t, in_fresh).update_val(b, slot, vw);
                    self.layout.charge_value_write(ctx);
                    self.out.updated += 1;
                    self.retire(&op, obs::OpOutcome::Updated);
                    warp.active &= !(1 << leader);
                } else if t + 1 < SUBTABLES {
                    warp.ops[leader].phase = InsPhase::Lookup(t + 1);
                } else {
                    // Not present: place into the emptier candidate bucket.
                    let fill = |k: &Self, ti: usize| {
                        let (bi, _, fi) = locate(k.salts, k.tables, k.view(), ti, h);
                        k.store_ro(ti, fi)
                            .bucket_keys(bi)
                            .iter()
                            .filter(|&&w| w != 0)
                            .count()
                    };
                    let target = if fill(self, 1) < fill(self, 0) { 1 } else { 0 };
                    warp.ops[leader].phase = InsPhase::Place(target);
                }
                ctx.atomic_exch_unlock(&mut self.store(t, in_fresh).locks, space, b);
                StepOutcome::Pending
            }

            InsPhase::Place(t) => {
                let (b, space, in_fresh) = locate(self.salts, self.tables, self.view(), t, h);
                if !ctx.atomic_cas_lock(&mut self.store(t, in_fresh).locks, space, b) {
                    warp.rr += 1; // revote
                    return StepOutcome::Pending;
                }
                // An empty slot is answerable from the fingerprint lane
                // alone (fps[s] == 0 ⟺ empty), so the gated layout reads
                // one fingerprint line here instead of the key lines.
                let empty = if self.store_ro(t, in_fresh).fp_active() {
                    self.layout.charge_fp_probe(ctx);
                    let store = self.store_ro(t, in_fresh);
                    let e = store.bucket_fps(b).iter().position(|&f| f == 0);
                    debug_assert_eq!(e, store.find_empty(b));
                    e
                } else {
                    self.layout.charge_probe(ctx);
                    self.store_ro(t, in_fresh).find_empty(b)
                };
                if let Some(slot) = empty {
                    let (kw, vw) = self.words_of(&op, ctx);
                    self.store(t, in_fresh).write_new(b, slot, kw, vw);
                    self.layout.charge_kv_write(ctx);
                    self.out.inserted += 1;
                    self.retire(&op, obs::OpOutcome::Inserted);
                    warp.active &= !(1 << leader);
                } else {
                    // Full bucket: evict a deterministic victim and carry
                    // its words to its other candidate subtable.
                    let slots = self.layout.slots;
                    let victim = (splitmix64(self.seed ^ op.salt ^ ((op.evictions as u64) << 32))
                        % slots as u64) as usize;
                    let (kw, vw) = self.words_of(&op, ctx);
                    let (ek, ev) = self.store(t, in_fresh).swap(b, victim, kw, vw);
                    self.layout.charge_kv_write(ctx);
                    ctx.metrics.charge(ChargeKind::Evictions, 1);
                    let lane = &mut warp.ops[leader];
                    lane.carried = Some((ek, ev, word_h48(ek)));
                    lane.evictions = op.evictions + 1;
                    lane.phase = InsPhase::Place(1 - t);
                    if lane.evictions >= self.eviction_limit {
                        let failed = *lane;
                        self.retire(&failed, obs::OpOutcome::Failed);
                        self.out
                            .failed
                            .push(failed.carried.expect("failed op carries words"));
                        warp.active &= !(1 << leader);
                    }
                }
                ctx.atomic_exch_unlock(&mut self.store(t, in_fresh).locks, space, b);
                StepOutcome::Pending
            }
        }
    }

    fn end_round(&mut self) {
        for t in self.tables.iter_mut() {
            t.locks.end_round();
        }
        if let Some((_, fresh)) = self.migration.as_mut() {
            fresh.locks.end_round();
        }
    }
}

// ---------------------------------------------------------------------------
// Delete kernel (leader-vote, one bucket lock per step).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct DelOp {
    idx: usize,
    t: usize,
}

struct DelWarp {
    ops: Vec<DelOp>,
    active: u32,
    rr: usize,
}

impl DelWarp {
    fn new(ops: Vec<DelOp>) -> Self {
        debug_assert!(ops.len() <= WARP_SIZE);
        let active = if ops.len() == 32 {
            u32::MAX
        } else {
            (1u32 << ops.len()) - 1
        };
        Self { ops, active, rr: 0 }
    }
}

struct DeleteKernel<'a> {
    tables: &'a mut [UnsizedStore; SUBTABLES],
    arena: &'a mut ByteArena,
    salts: &'a [u64; SUBTABLES],
    layout: LayoutConfig,
    migration: Option<(UView, &'a mut UnsizedStore)>,
    keys: &'a [&'a [u8]],
    queries: &'a [Query],
    removed: &'a mut [bool],
}

impl DeleteKernel<'_> {
    fn view(&self) -> Option<UView> {
        self.migration.as_ref().map(|(v, _)| *v)
    }

    fn store(&mut self, t: usize, in_fresh: bool) -> &mut UnsizedStore {
        if in_fresh {
            self.migration.as_mut().expect("fresh without migration").1
        } else {
            &mut self.tables[t]
        }
    }

    fn store_ro(&self, t: usize, in_fresh: bool) -> &UnsizedStore {
        if in_fresh {
            self.migration.as_ref().expect("fresh without migration").1
        } else {
            &self.tables[t]
        }
    }
}

impl RoundKernel<DelWarp> for DeleteKernel<'_> {
    fn step(&mut self, warp: &mut DelWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let mask = ballot(|l| warp.active & (1 << l) != 0);
        if mask == 0 {
            return StepOutcome::Done;
        }
        let leader = nth_active_lane(mask, warp.rr);
        let op = warp.ops[leader];
        let q = self.queries[op.idx];
        let (b, space, in_fresh) = locate(self.salts, self.tables, self.view(), op.t, q.h48);
        if !ctx.atomic_cas_lock(&mut self.store(op.t, in_fresh).locks, space, b) {
            warp.rr += 1; // revote
            return StepOutcome::Pending;
        }
        let found = probe_match(
            self.store_ro(op.t, in_fresh),
            self.arena,
            &self.layout,
            b,
            &q,
            self.keys[op.idx],
            ctx,
        );
        if let Some(slot) = found {
            let (kw, vw) = self.store_ro(op.t, in_fresh).slot(b, slot);
            free_entry(self.arena, kw, vw);
            self.store(op.t, in_fresh).erase(b, slot);
            self.layout.charge_key_write(ctx);
            self.removed[op.idx] = true;
            if obs::is_enabled() {
                obs::emit(obs::Event::OpRetired {
                    kind: obs::OpKind::Delete,
                    op: op.idx as u64,
                    key: q.h48,
                    outcome: obs::OpOutcome::Deleted,
                    probes: op.t as u32 + 1,
                    evict_depth: 0,
                    lock_waits: 0,
                });
            }
            warp.active &= !(1 << leader);
        } else if op.t + 1 < SUBTABLES {
            warp.ops[leader].t += 1;
        } else {
            if obs::is_enabled() {
                obs::emit(obs::Event::OpRetired {
                    kind: obs::OpKind::Delete,
                    op: op.idx as u64,
                    key: q.h48,
                    outcome: obs::OpOutcome::Miss,
                    probes: SUBTABLES as u32,
                    evict_depth: 0,
                    lock_waits: 0,
                });
            }
            warp.active &= !(1 << leader);
        }
        ctx.atomic_exch_unlock(&mut self.store(op.t, in_fresh).locks, space, b);
        StepOutcome::Pending
    }

    fn end_round(&mut self) {
        for t in self.tables.iter_mut() {
            t.locks.end_round();
        }
        if let Some((_, fresh)) = self.migration.as_mut() {
            fresh.locks.end_round();
        }
    }
}

// ---------------------------------------------------------------------------
// Migration drain kernel: one warp per source bucket, re-homing blobs.
// ---------------------------------------------------------------------------

struct DrainWarp {
    src: usize,
}

struct DrainKernel<'a> {
    old: &'a mut UnsizedStore,
    fresh: &'a mut UnsizedStore,
    arena: &'a mut ByteArena,
    salt: u64,
    old_space: u32,
    fresh_space: u32,
    moved: u64,
    blob_bytes: u64,
}

impl DrainKernel<'_> {
    /// Move a blob to a fresh arena block: the "drain" of arena pages.
    /// Reading and rewriting the bytes is charged; the old block's page is
    /// released once its last blob moves out.
    fn rehome(&mut self, blob: SpillRef, ctx: &mut RoundCtx) -> SpillRef {
        charge_blob_read(ctx, blob.len);
        let bytes = self.arena.read(blob);
        self.arena.free(blob);
        charge_blob_write(ctx, blob.len);
        self.blob_bytes += blob.len as u64;
        self.arena.alloc(&bytes)
    }

    fn drain_bucket(&mut self, b: usize, ctx: &mut RoundCtx) {
        let drain = self.old.layout().drain_lines();
        let old_n = self.old.n_buckets();
        let new_n = self.fresh.n_buckets();
        for _ in 0..drain {
            ctx.read_line();
        }
        let (mut wrote_lo, mut wrote_hi, mut cleared) = (false, false, false);
        for s in 0..self.old.slots_per_bucket() {
            let (kw, vw) = self.old.slot(b, s);
            if kw == 0 {
                continue;
            }
            let h = word_h48(kw);
            let nb = bucket_of(self.salt, h, new_n);
            debug_assert!(
                nb == b || nb == b + old_n,
                "upsize moved key across buckets"
            );
            // Re-home spilled bytes so arena pages drain with the buckets.
            let kw = match decode_key(kw) {
                KeyRepr::Spill { fp, blob, h48 } => {
                    encode_spill_key(fp, self.rehome(blob, ctx), h48)
                }
                KeyRepr::Inline { .. } => kw,
            };
            let vw = match decode_val(vw) {
                ValRepr::Spill(blob) => encode_spill_val(self.rehome(blob, ctx)),
                ValRepr::Inline { .. } => vw,
            };
            let slot = self
                .fresh
                .find_empty(nb)
                .expect("doubled bucket cannot overflow");
            self.fresh.write_new(nb, slot, kw, vw);
            self.old.erase(b, s);
            self.moved += 1;
            cleared = true;
            if nb == b {
                wrote_lo = true;
            } else {
                wrote_hi = true;
            }
        }
        for _ in 0..drain * (wrote_lo as u64 + wrote_hi as u64) {
            ctx.write_line();
        }
        if cleared {
            ctx.write_line();
        }
    }
}

impl RoundKernel<DrainWarp> for DrainKernel<'_> {
    fn step(&mut self, w: &mut DrainWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let b = w.src;
        let hi = b + self.old.n_buckets();
        if !ctx.atomic_cas_lock(&mut self.old.locks, self.old_space, b) {
            return StepOutcome::Pending;
        }
        if !ctx.atomic_cas_lock(&mut self.fresh.locks, self.fresh_space, b) {
            ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, b);
            return StepOutcome::Pending;
        }
        if !ctx.atomic_cas_lock(&mut self.fresh.locks, self.fresh_space, hi) {
            ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, b);
            ctx.atomic_exch_unlock(&mut self.fresh.locks, self.fresh_space, b);
            return StepOutcome::Pending;
        }
        self.drain_bucket(b, ctx);
        ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, b);
        ctx.atomic_exch_unlock(&mut self.fresh.locks, self.fresh_space, b);
        ctx.atomic_exch_unlock(&mut self.fresh.locks, self.fresh_space, hi);
        StepOutcome::Done
    }

    fn end_round(&mut self) {
        self.old.locks.end_round();
        self.fresh.locks.end_round();
    }
}

// ---------------------------------------------------------------------------
// The table.
// ---------------------------------------------------------------------------

/// A byte-string KV table over the unsized tier's slot encoding.
#[derive(Debug)]
pub struct UnsizedTable {
    cfg: UnsizedConfig,
    salts: [u64; SUBTABLES],
    tables: [UnsizedStore; SUBTABLES],
    arena: ByteArena,
    drain: Option<Drain>,
    /// Device bytes held, mirrored against `sim.device` at batch
    /// boundaries (see [`UnsizedTable::verify_integrity`]).
    ledger_bytes: u64,
    len: u64,
    op_counter: u64,
}

impl UnsizedTable {
    /// Create an empty table, allocating its subtables on the device.
    pub fn new(cfg: UnsizedConfig, sim: &mut SimContext) -> Result<Self> {
        cfg.validate()?;
        let mut tables = [
            UnsizedStore::new(cfg.n_buckets, cfg.layout),
            UnsizedStore::new(cfg.n_buckets, cfg.layout),
        ];
        for t in tables.iter_mut() {
            t.set_fp_fn(word_fp_hash);
        }
        let mut ledger_bytes = 0;
        for t in &tables {
            sim.device.alloc(t.device_bytes())?;
            ledger_bytes += t.device_bytes();
        }
        Ok(Self {
            salts: [
                splitmix64(cfg.seed),
                splitmix64(cfg.seed ^ 0x5EED_CAFE_F00D_D00D),
            ],
            tables,
            arena: ByteArena::new(cfg.page_bytes),
            drain: None,
            ledger_bytes,
            len: 0,
            op_counter: 0,
            cfg,
        })
    }

    /// The configuration the table was built with.
    pub fn config(&self) -> &UnsizedConfig {
        &self.cfg
    }

    /// Live entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots, counting the fresh side of an in-flight drain.
    pub fn capacity_slots(&self) -> u64 {
        self.tables.iter().map(|t| t.capacity_slots()).sum::<u64>()
            + self.drain.as_ref().map_or(0, |d| d.fresh.capacity_slots())
    }

    /// Overall filled factor.
    pub fn fill_factor(&self) -> f64 {
        self.len as f64 / self.capacity_slots() as f64
    }

    /// Device bytes held (buckets + locks + arena).
    pub fn device_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.device_bytes()).sum::<u64>()
            + self.drain.as_ref().map_or(0, |d| d.fresh.device_bytes())
            + self.arena.device_bytes()
    }

    /// Source buckets not yet drained (0 when idle).
    pub fn migration_backlog(&self) -> u64 {
        self.drain
            .as_ref()
            .map_or(0, |d| (d.span - d.cursor) as u64 + 1)
    }

    /// Whether an incremental migration is in flight.
    pub fn migration_in_flight(&self) -> bool {
        self.drain.is_some()
    }

    /// Observability snapshot.
    pub fn stats(&self) -> UnsizedStats {
        UnsizedStats {
            entries: self.len,
            capacity_slots: self.capacity_slots(),
            fill_factor: self.fill_factor(),
            arena_pages: self.arena.pages(),
            arena_live_bytes: self.arena.live_bytes(),
            arena_frag_bytes: self.arena.frag_bytes(),
            device_bytes: self.device_bytes(),
            migration_backlog: self.migration_backlog(),
        }
    }

    /// Free every device allocation this table holds.
    pub fn release(self, sim: &mut SimContext) -> Result<()> {
        sim.device.free(self.ledger_bytes)?;
        Ok(())
    }

    fn check_blobs<'k>(items: impl Iterator<Item = &'k [u8]>) -> Result<()> {
        for bytes in items {
            if bytes.len() > MAX_BLOB_LEN {
                return Err(Error::InvalidConfig(format!(
                    "byte string of {} bytes exceeds the {MAX_BLOB_LEN}-byte handle bound",
                    bytes.len()
                )));
            }
        }
        Ok(())
    }

    /// Reconcile the device allocation with the table's current footprint.
    /// Called at batch boundaries (arena churn happens inside kernels,
    /// where the device allocator is not reachable).
    fn sync_device(&mut self, sim: &mut SimContext) -> Result<()> {
        let target = self.device_bytes();
        if target > self.ledger_bytes {
            sim.device.alloc(target - self.ledger_bytes)?;
        } else if target < self.ledger_bytes {
            sim.device.free(self.ledger_bytes - target)?;
        }
        self.ledger_bytes = target;
        Ok(())
    }

    /// Begin growing the fuller subtable (no-op if a drain is in flight).
    fn start_grow(&mut self, report: &mut UnsizedReport) {
        if self.drain.is_some() {
            return;
        }
        let t = if self.tables[1].occupied() > self.tables[0].occupied() {
            1
        } else {
            0
        };
        let old_n = self.tables[t].n_buckets();
        let mut fresh = UnsizedStore::new(old_n * 2, self.cfg.layout);
        fresh.set_fp_fn(word_fp_hash);
        self.drain = Some(Drain {
            table: t,
            fresh,
            cursor: 0,
            span: old_n,
        });
        report.resizes += 1;
    }

    /// Drain up to one quantum of source buckets; finalize when done.
    fn pump_quantum(&mut self, sim: &mut SimContext, report: &mut UnsizedReport) {
        let Some(drain) = self.drain.as_mut() else {
            return;
        };
        let quantum = self.cfg.migration_quantum.max(1);
        let end = drain.cursor.saturating_add(quantum).min(drain.span);
        let _attr = obs::attr::scope("maintenance/migrate");
        let recording = obs::is_enabled();
        if end > drain.cursor {
            if recording {
                obs::span_begin(obs::Event::MigrateChunkBegin {
                    grow: true,
                    table: drain.table as u8,
                    cursor: drain.cursor as u64,
                    chunk: (end - drain.cursor) as u64,
                });
            }
            let t = drain.table;
            let mut warps: Vec<DrainWarp> =
                (drain.cursor..end).map(|src| DrainWarp { src }).collect();
            let mut kernel = DrainKernel {
                old: &mut self.tables[t],
                fresh: &mut drain.fresh,
                arena: &mut self.arena,
                salt: self.salts[t],
                old_space: t as u32,
                fresh_space: FRESH_SPACE_BASE + t as u32,
                moved: 0,
                blob_bytes: 0,
            };
            while !warps.is_empty() {
                run_rounds_quantum(
                    &mut kernel,
                    &mut warps,
                    &mut sim.metrics,
                    self.cfg.schedule,
                    quantum.min(1 << 20) as u64,
                );
            }
            let moved = kernel.moved;
            report.migrated_kvs += moved;
            report.migrated_blob_bytes += kernel.blob_bytes;
            report.migrated_buckets += (end - drain.cursor) as u64;
            drain.cursor = end;
            let backlog = (drain.span - end) as u64;
            if recording {
                obs::span_end(obs::Event::MigrateChunkEnd {
                    moved,
                    residuals: 0,
                    backlog,
                });
            }
        }
        if self.drain.as_ref().is_some_and(|d| d.cursor == d.span) {
            let d = self.drain.take().expect("drain present");
            debug_assert_eq!(self.tables[d.table].occupied(), 0);
            self.tables[d.table] = d.fresh;
        }
    }

    /// Advance an in-flight migration by one quantum (the service tier's
    /// per-tick pump). No-op when idle.
    pub fn pump_migration(&mut self, sim: &mut SimContext) -> Result<UnsizedReport> {
        let mut report = UnsizedReport::default();
        self.pump_quantum(sim, &mut report);
        self.sync_device(sim)?;
        self.debug_verify("pump_migration");
        Ok(report)
    }

    fn run_insert_kernel(
        &mut self,
        sim: &mut SimContext,
        pairs: &[(&[u8], &[u8])],
        queries: &[Query],
        ops: Vec<InsOp>,
        rule: MergeRule,
        kind: obs::OpKind,
    ) -> InsOut {
        let mut warps: Vec<InsWarp> = pack_warps(ops).into_iter().map(InsWarp::new).collect();
        let migration = self.drain.as_mut().map(|d| (d.view(), &mut d.fresh));
        let mut kernel = InsertKernel {
            tables: &mut self.tables,
            arena: &mut self.arena,
            salts: &self.salts,
            layout: self.cfg.layout,
            eviction_limit: self.cfg.eviction_limit,
            seed: self.cfg.seed,
            migration,
            pairs,
            queries,
            rule,
            kind,
            out: InsOut::default(),
        };
        let recording = obs::is_enabled();
        let rounds_before = sim.metrics.rounds;
        if recording {
            obs::span_begin(obs::Event::LaunchBegin {
                kind,
                warps: warps.len() as u32,
            });
        }
        run_rounds_with(&mut kernel, &mut warps, &mut sim.metrics, self.cfg.schedule);
        if recording {
            obs::span_end(obs::Event::LaunchEnd {
                rounds: sim.metrics.rounds - rounds_before,
            });
        }
        kernel.out
    }

    /// Upsert a batch of byte-string pairs. Keys must be unique within the
    /// batch (the same contract the fixed tier's batches have).
    pub fn insert_batch(
        &mut self,
        sim: &mut SimContext,
        pairs: &[(&[u8], &[u8])],
    ) -> Result<UnsizedReport> {
        let _attr = obs::attr::scope("unsized/insert");
        self.rmw_batch(sim, pairs, MergeRule::LastWrite, obs::OpKind::Insert)
    }

    /// Read-modify-write a batch of byte-string `(key, arg)` pairs under
    /// `rule`: absent keys store `rule.initial_bytes(arg)`, present keys
    /// `rule.merge_bytes(old, arg)` inside the insert kernel's bucket-lock
    /// critical section. `Add`/`Count` treat values as 8-byte little-endian
    /// counters; `Max`/`Min` compare lexicographically.
    ///
    /// Unlike [`UnsizedTable::insert_batch`], duplicate keys within the
    /// batch are allowed: they are pre-coalesced in submission order into
    /// one kernel op per unique key (`Count` occurrences normalize to one
    /// `Add` of the occurrence count).
    pub fn upsert_batch(
        &mut self,
        sim: &mut SimContext,
        pairs: &[(&[u8], &[u8])],
        rule: MergeRule,
    ) -> Result<UnsizedReport> {
        let _attr = obs::attr::scope("unsized/upsert");
        let one = 1u64.to_le_bytes();
        let eff = match rule {
            MergeRule::Count => MergeRule::Add,
            r => r,
        };
        // Coalesce duplicates: fold each key's occurrences into one arg via
        // the rule's own merge (exact for every stock rule — see
        // `MergeRule::fold_args` for the u32 statement of the law).
        let mut entries: Vec<(&[u8], Vec<u8>)> = Vec::new();
        let mut index: std::collections::HashMap<&[u8], usize> = std::collections::HashMap::new();
        for &(k, v) in pairs {
            let arg: &[u8] = if rule == MergeRule::Count { &one } else { v };
            match index.entry(k) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let slot = &mut entries[*e.get()].1;
                    *slot = eff.merge_bytes(slot, arg);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(entries.len());
                    entries.push((k, arg.to_vec()));
                }
            }
        }
        let coalesced: Vec<(&[u8], &[u8])> =
            entries.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        self.rmw_batch(sim, &coalesced, eff, obs::OpKind::Upsert)
    }

    /// Counting-table special case: bump each key's 8-byte little-endian
    /// counter by its number of occurrences in the batch.
    pub fn increment_batch(
        &mut self,
        sim: &mut SimContext,
        keys: &[&[u8]],
    ) -> Result<UnsizedReport> {
        let pairs: Vec<(&[u8], &[u8])> = keys.iter().map(|&k| (k, &[][..])).collect();
        self.upsert_batch(sim, &pairs, MergeRule::Count)
    }

    fn rmw_batch(
        &mut self,
        sim: &mut SimContext,
        pairs: &[(&[u8], &[u8])],
        rule: MergeRule,
        kind: obs::OpKind,
    ) -> Result<UnsizedReport> {
        Self::check_blobs(pairs.iter().flat_map(|(k, v)| [*k, *v].into_iter()))?;
        sim.metrics.charge(ChargeKind::Ops, pairs.len() as u64);
        let queries: Vec<Query> = pairs.iter().map(|(k, _)| query(k)).collect();
        let base = self.op_counter;
        self.op_counter += pairs.len() as u64;
        let ops: Vec<InsOp> = (0..pairs.len())
            .map(|idx| InsOp {
                idx,
                salt: splitmix64(base + idx as u64),
                phase: InsPhase::Lookup(0),
                carried: None,
                evictions: 0,
            })
            .collect();
        let mut report = UnsizedReport::default();
        let mut out = self.run_insert_kernel(sim, pairs, &queries, ops, rule, kind);
        report.inserted += out.inserted;
        report.updated += out.updated;
        // Insertion failure triggers upsizing; retries ride the drain as it
        // advances (stop-the-world with the default infinite quantum).
        while !out.failed.is_empty() {
            if self.drain.is_none() {
                if report.resizes >= MAX_RESIZES_PER_BATCH {
                    return Err(Error::InsertStuck {
                        failed_ops: out.failed.len(),
                    });
                }
                self.start_grow(&mut report);
            }
            self.pump_quantum(sim, &mut report);
            report.retries += out.failed.len() as u64;
            let retry_ops: Vec<InsOp> = out
                .failed
                .iter()
                .enumerate()
                .map(|(i, &(kw, vw, h))| InsOp {
                    idx: 0,
                    salt: splitmix64(self.op_counter + i as u64) ^ 0x5245_5452_59A5_A5A5,
                    phase: InsPhase::Place(0),
                    carried: Some((kw, vw, h)),
                    evictions: 0,
                })
                .collect();
            self.op_counter += out.failed.len() as u64;
            out = self.run_insert_kernel(sim, pairs, &queries, retry_ops, rule, kind);
            report.inserted += out.inserted;
            report.updated += out.updated;
        }
        self.len += report.inserted;
        // Proactive growth keeps the filled factor under the bound; an
        // already-running drain advances one quantum per batch instead.
        if self.drain.is_none() {
            if self.fill_factor() > self.cfg.max_load {
                self.start_grow(&mut report);
                self.pump_quantum(sim, &mut report);
            }
        } else {
            self.pump_quantum(sim, &mut report);
        }
        self.sync_device(sim)?;
        self.debug_verify("rmw_batch");
        Ok(report)
    }

    /// Look up a batch of keys, returning each value's bytes if present.
    pub fn find_batch(
        &mut self,
        sim: &mut SimContext,
        keys: &[&[u8]],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        Self::check_blobs(keys.iter().copied())?;
        let _attr = obs::attr::scope("unsized/find");
        sim.metrics.charge(ChargeKind::Ops, keys.len() as u64);
        let queries: Vec<Query> = keys.iter().map(|k| query(k)).collect();
        let mut results: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        let mut warps: Vec<FindWarp> = (0..keys.len())
            .collect::<Vec<_>>()
            .chunks(WARP_SIZE)
            .map(|chunk| FindWarp {
                idxs: chunk.to_vec(),
                cur: 0,
                cand: 0,
            })
            .collect();
        let migration = self.drain.as_ref().map(|d| (d.view(), &d.fresh));
        let mut kernel = FindKernel {
            tables: &self.tables,
            arena: &self.arena,
            salts: &self.salts,
            layout: self.cfg.layout,
            migration,
            keys,
            queries: &queries,
            results: &mut results,
        };
        let recording = obs::is_enabled();
        let rounds_before = sim.metrics.rounds;
        if recording {
            obs::span_begin(obs::Event::LaunchBegin {
                kind: obs::OpKind::Find,
                warps: warps.len() as u32,
            });
        }
        run_rounds_with(&mut kernel, &mut warps, &mut sim.metrics, self.cfg.schedule);
        if recording {
            obs::span_end(obs::Event::LaunchEnd {
                rounds: sim.metrics.rounds - rounds_before,
            });
        }
        Ok(results)
    }

    /// Delete a batch of keys. Returns which were present, plus the batch
    /// report.
    pub fn delete_batch(
        &mut self,
        sim: &mut SimContext,
        keys: &[&[u8]],
    ) -> Result<(Vec<bool>, UnsizedReport)> {
        Self::check_blobs(keys.iter().copied())?;
        let _attr = obs::attr::scope("unsized/delete");
        sim.metrics.charge(ChargeKind::Ops, keys.len() as u64);
        let queries: Vec<Query> = keys.iter().map(|k| query(k)).collect();
        let mut removed = vec![false; keys.len()];
        let ops: Vec<DelOp> = (0..keys.len()).map(|idx| DelOp { idx, t: 0 }).collect();
        let mut warps: Vec<DelWarp> = pack_warps(ops).into_iter().map(DelWarp::new).collect();
        let migration = self.drain.as_mut().map(|d| (d.view(), &mut d.fresh));
        let mut kernel = DeleteKernel {
            tables: &mut self.tables,
            arena: &mut self.arena,
            salts: &self.salts,
            layout: self.cfg.layout,
            migration,
            keys,
            queries: &queries,
            removed: &mut removed,
        };
        let recording = obs::is_enabled();
        let rounds_before = sim.metrics.rounds;
        if recording {
            obs::span_begin(obs::Event::LaunchBegin {
                kind: obs::OpKind::Delete,
                warps: warps.len() as u32,
            });
        }
        run_rounds_with(&mut kernel, &mut warps, &mut sim.metrics, self.cfg.schedule);
        if recording {
            obs::span_end(obs::Event::LaunchEnd {
                rounds: sim.metrics.rounds - rounds_before,
            });
        }
        let mut report = UnsizedReport {
            deleted: removed.iter().filter(|&&r| r).count() as u64,
            ..UnsizedReport::default()
        };
        self.len -= report.deleted;
        if self.drain.is_some() {
            self.pump_quantum(sim, &mut report);
        }
        self.sync_device(sim)?;
        self.debug_verify("delete_batch");
        Ok((removed, report))
    }

    /// Single-pair upsert convenience.
    pub fn put(&mut self, sim: &mut SimContext, key: &[u8], val: &[u8]) -> Result<UnsizedReport> {
        self.insert_batch(sim, &[(key, val)])
    }

    /// Single-key lookup convenience.
    pub fn get(&mut self, sim: &mut SimContext, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.find_batch(sim, &[key])?.pop().expect("one result"))
    }

    /// Single-key delete convenience.
    pub fn delete(&mut self, sim: &mut SimContext, key: &[u8]) -> Result<bool> {
        let (removed, _) = self.delete_batch(sim, &[key])?;
        Ok(removed[0])
    }

    /// Verify every structural invariant: ledger vs layout-derived bytes,
    /// occupancy counts, word well-formedness, arena accounting against
    /// the live handle set, and candidate-bucket residency (honouring the
    /// drain cursor).
    pub fn verify_integrity(&self) -> std::result::Result<(), String> {
        if self.ledger_bytes != self.device_bytes() {
            return Err(format!(
                "ledger {} != layout-derived device bytes {}",
                self.ledger_bytes,
                self.device_bytes()
            ));
        }
        let view = self.drain.as_ref().map(|d| d.view());
        let mut live = 0u64;
        let mut refs: Vec<SpillRef> = Vec::new();
        let mut check_store =
            |store: &UnsizedStore, t: usize, in_fresh: bool| -> std::result::Result<u64, String> {
                if store.occupied() != store.recount() {
                    return Err(format!(
                        "occupancy drift in subtable {t} (fresh={in_fresh})"
                    ));
                }
                for b in 0..store.n_buckets() {
                    for (s, &kw) in store.bucket_keys(b).iter().enumerate() {
                        if kw == 0 {
                            continue;
                        }
                        let tag = (kw & 0xFF) as u8;
                        if tag != SPILL_TAG && tag as usize > INLINE_KEY_MAX + 1 {
                            return Err(format!("malformed key tag {tag:#x} at t{t} b{b} s{s}"));
                        }
                        let vw = store.bucket_vals(b)[s];
                        let vtag = (vw & 0xFF) as u8;
                        if vtag == 0 || (vtag != SPILL_TAG && vtag as usize > INLINE_VAL_MAX + 1) {
                            return Err(format!("malformed value tag {vtag:#x} at t{t} b{b} s{s}"));
                        }
                        if let Some(blob) = decode_key(kw).spill() {
                            refs.push(blob);
                        }
                        if let Some(blob) = decode_val(vw).spill() {
                            refs.push(blob);
                        }
                        // Residency: the slot word must map to this bucket.
                        let h = word_h48(kw);
                        let (eb, _, ef) = locate(&self.salts, &self.tables, view, t, h);
                        if eb != b || ef != in_fresh {
                            return Err(format!(
                                "key at t{t} b{b} s{s} routed to b{eb} (fresh={ef})"
                            ));
                        }
                    }
                }
                Ok(store.occupied())
            };
        for (t, store) in self.tables.iter().enumerate() {
            live += check_store(store, t, false)?;
        }
        if let Some(d) = &self.drain {
            live += check_store(&d.fresh, d.table, true)?;
            // Drained source buckets must be empty.
            for b in 0..d.cursor {
                if self.tables[d.table].bucket_keys(b).iter().any(|&w| w != 0) {
                    return Err(format!(
                        "drained bucket {b} of subtable {} not empty",
                        d.table
                    ));
                }
            }
        }
        if live != self.len {
            return Err(format!("len {} != live slots {live}", self.len));
        }
        self.arena.verify(&refs)
    }

    /// Panic (debug builds only) if any invariant broke after a batch.
    fn debug_verify(&self, when: &str) {
        if cfg!(debug_assertions) {
            if let Err(e) = self.verify_integrity() {
                panic!("integrity violation after {when}: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(tag: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (splitmix64(tag.wrapping_mul(0x9E37) ^ i as u64) & 0xFF) as u8)
            .collect()
    }

    fn as_refs(pairs: &[(Vec<u8>, Vec<u8>)]) -> Vec<(&[u8], &[u8])> {
        pairs
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect()
    }

    #[test]
    fn round_trips_inline_and_spilled_pairs() {
        let mut sim = SimContext::new();
        let mut t = UnsizedTable::new(UnsizedConfig::default(), &mut sim).unwrap();
        // Key lengths straddle the inline bound (12) on both sides; value
        // lengths straddle theirs (7). One empty key and empty values too.
        let key_lens = [0usize, 1, 7, 11, 12, 13, 20, 64, 200, 1000];
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = key_lens
            .iter()
            .enumerate()
            .map(|(i, &kl)| (blob(i as u64 + 1, kl), blob(i as u64 + 100, (kl * 3) % 37)))
            .collect();
        let refs = as_refs(&pairs);
        let rep = t.insert_batch(&mut sim, &refs).unwrap();
        assert_eq!(rep.inserted, pairs.len() as u64);
        assert_eq!(t.len(), pairs.len() as u64);

        let keys: Vec<&[u8]> = pairs.iter().map(|(k, _)| k.as_slice()).collect();
        let found = t.find_batch(&mut sim, &keys).unwrap();
        for ((k, v), got) in pairs.iter().zip(found.iter()) {
            assert_eq!(got.as_deref(), Some(v.as_slice()), "key len {}", k.len());
        }
        assert_eq!(t.get(&mut sim, b"not present").unwrap(), None);
        t.verify_integrity().unwrap();
        assert_eq!(sim.device.allocated_bytes(), t.device_bytes());
        t.release(&mut sim).unwrap();
        assert_eq!(sim.device.allocated_bytes(), 0);
    }

    #[test]
    fn upsert_transitions_between_inline_and_spilled_values() {
        let mut sim = SimContext::new();
        let mut t = UnsizedTable::new(UnsizedConfig::default(), &mut sim).unwrap();
        let key = blob(7, 40); // spilled key: its bytes stay put across upserts
        let big = blob(8, 300);
        let small = b"tiny".to_vec();

        t.put(&mut sim, &key, &big).unwrap();
        let spilled = t.stats().arena_live_bytes;
        assert_eq!(spilled, (key.len() + big.len()) as u64);

        let rep = t.put(&mut sim, &key, &small).unwrap();
        assert_eq!((rep.inserted, rep.updated), (0, 1));
        assert_eq!(t.get(&mut sim, &key).unwrap().as_deref(), Some(&small[..]));
        // The old value's 300 bytes were freed; the new one is inline.
        assert_eq!(t.stats().arena_live_bytes, key.len() as u64);
        assert_eq!(t.len(), 1);

        t.put(&mut sim, &key, &big).unwrap();
        assert_eq!(t.get(&mut sim, &key).unwrap().as_deref(), Some(&big[..]));
        t.verify_integrity().unwrap();
    }

    #[test]
    fn delete_returns_presence_and_releases_arena_bytes() {
        let mut sim = SimContext::new();
        let mut t = UnsizedTable::new(UnsizedConfig::default(), &mut sim).unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..40u64)
            .map(|i| (blob(i + 1, 30), blob(i + 500, 90)))
            .collect();
        let refs = as_refs(&pairs);
        t.insert_batch(&mut sim, &refs).unwrap();
        assert!(t.stats().arena_live_bytes > 0);

        let keys: Vec<&[u8]> = pairs.iter().map(|(k, _)| k.as_slice()).collect();
        let (removed, rep) = t.delete_batch(&mut sim, &keys).unwrap();
        assert!(removed.iter().all(|&r| r));
        assert_eq!(rep.deleted, 40);
        assert_eq!(t.len(), 0);
        assert_eq!(t.stats().arena_live_bytes, 0);
        assert!(
            !t.delete(&mut sim, &pairs[0].0).unwrap(),
            "double delete misses"
        );
        t.verify_integrity().unwrap();
        assert_eq!(sim.device.allocated_bytes(), t.device_bytes());
    }

    #[test]
    fn insert_pressure_grows_the_table() {
        let mut sim = SimContext::new();
        let cfg = UnsizedConfig {
            n_buckets: 2,
            ..UnsizedConfig::default()
        };
        let mut t = UnsizedTable::new(cfg, &mut sim).unwrap();
        let start_slots = t.capacity_slots();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..300u64)
            .map(|i| (blob(i + 1, 5 + (i as usize % 25)), blob(i + 900, 10)))
            .collect();
        let mut resizes = 0;
        for chunk in pairs.chunks(32) {
            let refs = as_refs(chunk);
            resizes += t.insert_batch(&mut sim, &refs).unwrap().resizes;
        }
        assert!(resizes >= 1, "300 keys into 32 slots must upsize");
        assert!(t.capacity_slots() > start_slots);
        assert!(t.fill_factor() <= t.config().max_load + 1e-9);
        let keys: Vec<&[u8]> = pairs.iter().map(|(k, _)| k.as_slice()).collect();
        for (got, (_, v)) in t
            .find_batch(&mut sim, &keys)
            .unwrap()
            .iter()
            .zip(pairs.iter())
        {
            assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        t.verify_integrity().unwrap();
    }

    #[test]
    fn incremental_migration_serves_operations_mid_drain() {
        let mut sim = SimContext::new();
        let cfg = UnsizedConfig {
            n_buckets: 8,
            migration_quantum: 1,
            max_load: 0.5,
            ..UnsizedConfig::default()
        };
        let mut t = UnsizedTable::new(cfg, &mut sim).unwrap();
        // All keys/values spill, so migration must re-home arena bytes.
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..160u64)
            .map(|i| (blob(i + 1, 24), blob(i + 700, 40)))
            .collect();
        let refs = as_refs(&pairs);
        let mut rep = t.insert_batch(&mut sim, &refs).unwrap();
        assert!(
            t.migration_in_flight(),
            "load factor 0.5 with quantum 1 leaves a drain running"
        );

        // Mid-drain: lookups, upserts and deletes all route around the cursor
        // (debug_verify checks residency after every batch).
        let mut checked_mid_drain = false;
        let mut i = 0usize;
        while t.migration_in_flight() {
            let (k, v) = &pairs[i % pairs.len()];
            match i % 3 {
                0 => assert_eq!(t.get(&mut sim, k).unwrap().as_deref(), Some(v.as_slice())),
                1 => {
                    rep.merge(&t.put(&mut sim, k, b"replacement-value-bytes").unwrap());
                    rep.merge(&t.put(&mut sim, k, v).unwrap());
                }
                _ => {
                    assert!(t.delete(&mut sim, k).unwrap());
                    rep.merge(&t.put(&mut sim, k, v).unwrap());
                }
            }
            checked_mid_drain = true;
            i += 1;
            rep.merge(&t.pump_migration(&mut sim).unwrap());
        }
        assert!(checked_mid_drain);
        assert!(rep.migrated_kvs > 0);
        assert!(
            rep.migrated_blob_bytes > 0,
            "spilled bytes must be re-homed by the drain"
        );
        assert_eq!(t.migration_backlog(), 0);
        let keys: Vec<&[u8]> = pairs.iter().map(|(k, _)| k.as_slice()).collect();
        for (got, (_, v)) in t
            .find_batch(&mut sim, &keys)
            .unwrap()
            .iter()
            .zip(pairs.iter())
        {
            assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        t.verify_integrity().unwrap();
        assert_eq!(sim.device.allocated_bytes(), t.device_bytes());
    }

    #[test]
    fn oversized_blobs_are_rejected_without_side_effects() {
        let mut sim = SimContext::new();
        let mut t = UnsizedTable::new(UnsizedConfig::default(), &mut sim).unwrap();
        let huge = vec![0u8; MAX_BLOB_LEN + 1];
        assert!(t.put(&mut sim, &huge, b"v").is_err());
        assert!(t.put(&mut sim, b"k", &huge).is_err());
        assert_eq!(t.len(), 0);
        t.verify_integrity().unwrap();
    }

    #[test]
    fn config_validation_rejects_bad_geometry() {
        let sim = &mut SimContext::new();
        let bad_layout = UnsizedConfig {
            layout: LayoutConfig::soa(8, 4, 4),
            ..UnsizedConfig::default()
        };
        assert!(UnsizedTable::new(bad_layout, sim).is_err());
        let bad_page = UnsizedConfig {
            page_bytes: 12,
            ..UnsizedConfig::default()
        };
        assert!(UnsizedTable::new(bad_page, sim).is_err());
        assert_eq!(sim.device.allocated_bytes(), 0);
    }

    #[test]
    fn probe_cost_matches_the_fixed_tier_for_inline_keys() {
        // The whole point of the 16-byte slot word: 8 slots × 16 B = one
        // 128-byte key line, so an all-inline probe costs exactly what the
        // u32 tier's probe does.
        let mut sim = SimContext::new();
        let mut t = UnsizedTable::new(UnsizedConfig::default(), &mut sim).unwrap();
        t.put(&mut sim, b"inline-key", b"val").unwrap();
        sim.take_metrics();
        t.get(&mut sim, b"absent-key!").unwrap();
        let m = sim.take_metrics();
        // One probe per candidate subtable, one line each, no arena traffic.
        assert_eq!(m.read_transactions, SUBTABLES as u64);
        assert_eq!(m.lookups, SUBTABLES as u64);
        assert_eq!(m.random_read_transactions, 0);
    }
}
