//! **schedule_fuzz** — deterministic schedule-exploration fuzzer.
//!
//! Sweeps (workload seed, schedule policy) pairs over every scheme in the
//! repository, checking each execution against the differential oracle in
//! [`bench::fuzz`]. A violation is minimized with ddmin and written out as
//! a `repro-*.ron` artifact that `--replay` re-executes bit-identically.
//!
//! The default run is **fully deterministic**: the summary (including the
//! per-target execution digests) is byte-identical across invocations on
//! any machine — that is the property CI pins. The only escape hatch is
//! `--budget-secs`, which reads the wall clock and therefore makes the
//! *case count* (not any individual verdict) load-dependent; it exists for
//! long exploratory runs, not for CI.
//!
//! ```text
//! schedule_fuzz [--seeds N] [--ops N] [--targets a,b,..] [--policies s1,s2,..]
//!               [--layout SPEC] [--migration-quanta q1,q2,..]
//!               [--tier fixed|unsized] [--key-dists d1,d2,..]
//!               [--fingerprints b1,b2,..] [--miss-filter] [--rmw]
//!               [--inject-lock-elision] [--expect-violations]
//!               [--out DIR] [--budget-secs S] [--replay FILE]
//! ```
//!
//! * `--seeds N` — seeds per target (default 16). Seed `s` fuzzes workload
//!   `s` under `SchedulePolicy::from_seed(s)` unless `--policies` pins an
//!   explicit list (then every seed runs under every listed policy).
//! * `--targets` — comma-separated subset of
//!   `dycuckoo,wide,megakv,slab,linear,cudpp,service` (default: all).
//! * `--layout SPEC` — bucket layout (`soa32`, `aos16`, ...) for the
//!   targets that sweep it (default `soa32`, the paper's). The oracle is
//!   layout-blind: any layout must produce reference-identical results.
//! * `--migration-quanta q1,q2,..` — migration quanta to sweep (`inf` or a
//!   bucket count, default `inf`). Every (seed, policy) pair runs once per
//!   quantum; finite quanta engage the incremental migration machine so
//!   the oracle checks linearizability *mid-migration* (see
//!   `Config::migration_quantum`).
//! * `--tier unsized` — run the byte-KV oracle over `dycuckoo::UnsizedTable`
//!   instead of the per-target u32 oracles: the same op stream is widened
//!   into byte-string keys/values and checked byte-exactly against a
//!   reference map (the target sweep collapses to one runner unless
//!   `--targets` is given explicitly). Default: `fixed`, the historical
//!   sweep — digests are untouched.
//! * `--key-dists d1,d2,..` — key-length distributions to sweep under
//!   `--tier unsized` (`all_inline`, `mixed`, `all_spill`; default
//!   `mixed`). Ignored by the fixed tier.
//! * `--fingerprints b1,b2,..` — fingerprint-lane widths to sweep (`0`,
//!   `8`, `16`; default `0`, the bare historical layout). Every case runs
//!   once per width with the lane forced onto the DyCuckoo-family layouts.
//!   The oracle is gate-blind *and* a fingerprint gate charges only memory
//!   lines, so a nonzero width must leave every verdict — and every
//!   digest — identical to the `0` run.
//! * `--miss-filter` — arm the service target's per-shard cuckoo-filter
//!   miss shield (8-bit tags). Shed gets complete at submission time, so
//!   service digests legitimately differ from the unshielded run; the
//!   oracle still requires reference-exact replies.
//! * `--host-par N` — run the host-par differential on `N` OS threads
//!   alongside every sim execution: fixed-tier table cases mirror each
//!   batch into a `dycuckoo::ParTable` whose final logical map must match
//!   the reference, and service cases re-run under `Backend::HostPar`
//!   whose digest must equal the sim digest bit-for-bit. The reported
//!   digests are always the sim executions', so a `--host-par` sweep must
//!   print the same summary as the bare run — that equality *is* the
//!   differential verdict.
//! * `--rmw` — arm the read-modify-write verbs: workloads come from
//!   `gen_ops_rmw`, which mixes upserts (all five merge rules) and
//!   increments into the stream. A different generator means different
//!   op streams and therefore different digests, so the historical
//!   (unarmed) sweep's pinned digest is untouched by construction.
//! * `--inject-lock-elision` — plant the known lock-elision bug in the
//!   DyCuckoo insert kernel (see `Config::inject_lock_elision`); used with
//!   `--expect-violations` to prove the oracle catches and shrinks it.
//! * `--expect-violations` — invert the exit code: succeed only if at
//!   least one violation was found (CI's self-test of the oracle).
//! * `--replay FILE` — re-run one repro artifact; exits 1 if the violation
//!   still reproduces, 0 if it no longer does.
//!
//! Exit code: 0 on a clean sweep, 1 if any oracle violation was found
//! (inverted under `--expect-violations`), 2 on usage errors.

use std::process::ExitCode;

use bench::fuzz::{gen_ops, gen_ops_rmw, run_case, shrink_case, Case, Repro, Target};
use gpu_sim::explore::mix64;
use gpu_sim::{LayoutConfig, SchedulePolicy};
use kv_service::Tier;
use workloads::LengthDist;

struct Args {
    seeds: u64,
    ops: usize,
    targets: Vec<Target>,
    policies: Option<Vec<SchedulePolicy>>,
    inject: bool,
    layout: LayoutConfig,
    migration_quanta: Vec<usize>,
    tier: Tier,
    key_dists: Vec<LengthDist>,
    fingerprints: Vec<u8>,
    miss_filter: bool,
    rmw: bool,
    host_par: usize,
    targets_pinned: bool,
    expect_violations: bool,
    out_dir: String,
    budget_secs: Option<u64>,
    replay: Option<String>,
}

fn usage(err: &str) -> ExitCode {
    eprintln!("schedule_fuzz: {err}");
    eprintln!(
        "usage: schedule_fuzz [--seeds N] [--ops N] [--targets a,b,..] [--policies s1,s2,..]\n\
         \x20                    [--layout SPEC] [--migration-quanta q1,q2,..]\n\
         \x20                    [--tier fixed|unsized] [--key-dists d1,d2,..]\n\
         \x20                    [--fingerprints b1,b2,..] [--miss-filter] [--rmw] [--host-par N]\n\
         \x20                    [--inject-lock-elision] [--expect-violations]\n\
         \x20                    [--out DIR] [--budget-secs S] [--replay FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 16,
        ops: 96,
        targets: Target::ALL.to_vec(),
        policies: None,
        inject: false,
        layout: LayoutConfig::default(),
        migration_quanta: vec![usize::MAX],
        tier: Tier::Fixed,
        key_dists: vec![LengthDist::Mixed],
        fingerprints: vec![0],
        miss_filter: false,
        rmw: false,
        host_par: 0,
        targets_pinned: false,
        expect_violations: false,
        out_dir: ".".to_string(),
        budget_secs: None,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seeds" => {
                args.seeds = val("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--ops" => args.ops = val("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--targets" => {
                let list = val("--targets")?;
                args.targets = list
                    .split(',')
                    .map(|n| {
                        Target::from_name(n.trim()).ok_or_else(|| format!("unknown target {n:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                args.targets_pinned = true;
            }
            "--policies" => {
                let list = val("--policies")?;
                args.policies = Some(
                    list.split(',')
                        .map(|s| {
                            SchedulePolicy::from_spec(s.trim())
                                .ok_or_else(|| format!("unknown policy spec {s:?}"))
                        })
                        .collect::<Result<_, _>>()?,
                );
            }
            "--inject-lock-elision" => args.inject = true,
            "--layout" => {
                let spec = val("--layout")?;
                args.layout = LayoutConfig::parse(&spec, 4, 4)
                    .ok_or_else(|| format!("unknown layout spec {spec:?}"))?;
            }
            "--migration-quanta" => {
                let list = val("--migration-quanta")?;
                args.migration_quanta = list
                    .split(',')
                    .map(|s| match s.trim() {
                        "inf" | "max" => Ok(usize::MAX),
                        n => n
                            .parse::<usize>()
                            .ok()
                            .filter(|&q| q > 0)
                            .ok_or_else(|| format!("bad migration quantum {n:?}")),
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--tier" => {
                let name = val("--tier")?;
                args.tier =
                    Tier::from_name(&name).ok_or_else(|| format!("unknown tier {name:?}"))?;
            }
            "--key-dists" => {
                let list = val("--key-dists")?;
                args.key_dists = list
                    .split(',')
                    .map(|s| {
                        LengthDist::parse(s.trim())
                            .ok_or_else(|| format!("unknown key distribution {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--fingerprints" => {
                let list = val("--fingerprints")?;
                args.fingerprints = list
                    .split(',')
                    .map(|s| match s.trim().parse::<u8>() {
                        Ok(b @ (0 | 8 | 16)) => Ok(b),
                        _ => Err(format!("bad fingerprint width {s:?} (want 0, 8 or 16)")),
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--miss-filter" => args.miss_filter = true,
            "--rmw" => args.rmw = true,
            "--host-par" => {
                args.host_par = val("--host-par")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("--host-par wants a positive thread count")?;
            }
            "--expect-violations" => args.expect_violations = true,
            "--out" => args.out_dir = val("--out")?,
            "--budget-secs" => {
                args.budget_secs = Some(
                    val("--budget-secs")?
                        .parse()
                        .map_err(|e| format!("--budget-secs: {e}"))?,
                )
            }
            "--replay" => args.replay = Some(val("--replay")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.ops == 0 || args.seeds == 0 {
        return Err("--seeds and --ops must be positive".to_string());
    }
    // The unsized runner ignores the target, so sweeping all seven would
    // just repeat identical cases; collapse unless the user pinned a list.
    if args.tier == Tier::Unsized && !args.targets_pinned {
        args.targets = vec![Target::DyCuckoo];
    }
    Ok(args)
}

fn replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return usage(&format!("cannot read {path}: {e}")),
    };
    let repro = match Repro::from_ron(&text) {
        Ok(r) => r,
        Err(e) => return usage(&format!("cannot parse {path}: {e}")),
    };
    println!(
        "replaying {} ops against {} under policy {} (recorded violation: {})",
        repro.case.ops.len(),
        repro.case.target.name(),
        repro.case.policy.spec(),
        repro.violation,
    );
    match run_case(&repro.case) {
        Err(v) => {
            println!("VIOLATION reproduced: {v}");
            ExitCode::FAILURE
        }
        Ok(digest) => {
            println!(
                "no violation (digest {digest:#018x}) — the recorded bug no longer reproduces"
            );
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return usage(&e),
    };
    if let Some(path) = &args.replay {
        return replay(path);
    }

    let start = std::time::Instant::now();
    let mut total_cases = 0u64;
    let mut total_violations = 0u64;
    let mut total_digest = 0u64;
    let mut budget_hit = false;
    let fold = |d: u64, x: u64| mix64(d ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15));

    'sweep: for &target in &args.targets {
        let mut cases = 0u64;
        let mut violations = 0u64;
        let mut digest = 0u64;
        for seed in 0..args.seeds {
            let policies: Vec<SchedulePolicy> = match &args.policies {
                Some(list) => list.clone(),
                None => vec![SchedulePolicy::from_seed(seed)],
            };
            for policy in policies {
                for &quantum in &args.migration_quanta {
                    let dists: &[LengthDist] = if args.tier == Tier::Unsized {
                        &args.key_dists
                    } else {
                        &[LengthDist::Mixed]
                    };
                    for &key_dist in dists {
                        for &fingerprint in &args.fingerprints {
                            if let Some(budget) = args.budget_secs {
                                if start.elapsed().as_secs() >= budget {
                                    budget_hit = true;
                                    break 'sweep;
                                }
                            }
                            let case = Case {
                                target,
                                policy,
                                workload_seed: seed,
                                inject_lock_elision: args.inject,
                                layout: args.layout,
                                migration_quantum: quantum,
                                tier: args.tier,
                                key_dist,
                                fingerprint,
                                miss_filter: args.miss_filter,
                                host_par_threads: args.host_par,
                                ops: if args.rmw {
                                    gen_ops_rmw(seed, args.ops)
                                } else {
                                    gen_ops(seed, args.ops)
                                },
                            };
                            cases += 1;
                            match run_case(&case) {
                                Ok(d) => digest = fold(digest, d),
                                Err(v) => {
                                    violations += 1;
                                    digest = fold(digest, 0xBAD);
                                    let (min, min_violation) = shrink_case(&case);
                                    let repro = Repro {
                                        case: min.clone(),
                                        violation: min_violation.detail.clone(),
                                    };
                                    let qtag = if quantum == usize::MAX {
                                        String::new()
                                    } else {
                                        format!("-q{quantum}")
                                    };
                                    let ttag = if args.tier == Tier::Unsized {
                                        format!("-{}", key_dist.name())
                                    } else {
                                        String::new()
                                    };
                                    let fptag = if fingerprint > 0 {
                                        format!("-fp{fingerprint}")
                                    } else {
                                        String::new()
                                    };
                                    let mftag = if args.miss_filter { "-mf" } else { "" };
                                    let rmwtag = if args.rmw { "-rmw" } else { "" };
                                    let hptag = if args.host_par > 0 {
                                        format!("-hp{}", args.host_par)
                                    } else {
                                        String::new()
                                    };
                                    let file = format!(
                                        "{}/repro-{}-{seed}{qtag}{ttag}{fptag}{mftag}{rmwtag}{hptag}.ron",
                                        args.out_dir.trim_end_matches('/'),
                                        target.name()
                                    );
                                    if let Err(e) = std::fs::write(&file, repro.to_ron()) {
                                        eprintln!("warning: cannot write {file}: {e}");
                                    }
                                    println!(
                                        "REPRO target={} seed={seed} policy={} quantum={quantum} fp={fingerprint} ops={} file={file}",
                                        target.name(),
                                        policy.spec(),
                                        min.ops.len()
                                    );
                                    println!("  first violation: {v}");
                                    println!("  shrunk violation: {min_violation}");
                                }
                            }
                        }
                    }
                }
            }
        }
        println!(
            "target={} cases={cases} violations={violations} digest={digest:#018x}",
            target.name()
        );
        total_cases += cases;
        total_violations += violations;
        total_digest = fold(total_digest, digest);
    }
    if budget_hit {
        println!("BUDGET exhausted after {total_cases} cases (summary is load-dependent)");
    }
    println!("TOTAL cases={total_cases} violations={total_violations} digest={total_digest:#018x}");
    let clean = total_violations == 0;
    if args.expect_violations == clean {
        if args.expect_violations {
            eprintln!("expected at least one violation, found none");
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
