//! Property-based invariant tests for the DyCuckoo core (DESIGN.md §7).

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

use dycuckoo::{Config, Distribution, DyCuckoo, Layering, WideDyCuckoo};
use gpu_sim::{SchedulePolicy, SimContext};

/// An operation in a random workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u32),
    Delete(u32),
    Find(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Keys from a smallish domain so deletes/finds hit live keys often.
    let key = 1u32..5000;
    prop_oneof![
        4 => (key.clone(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key.clone().prop_map(Op::Delete),
        2 => key.prop_map(Op::Find),
    ]
}

fn small_config(layering: Layering, distribution: Distribution) -> Config {
    Config {
        initial_buckets: 2,
        layering,
        distribution,
        ..Config::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The table agrees with a reference `HashMap` after any op sequence,
    /// and every structural invariant holds throughout.
    #[test]
    fn matches_reference_map(ops in vec(op_strategy(), 1..400)) {
        let mut sim = SimContext::new();
        let mut table =
            DyCuckoo::new(small_config(Layering::TwoLayer, Distribution::Balanced), &mut sim)
                .unwrap();
        let mut reference: HashMap<u32, u32> = HashMap::new();

        for chunk in ops.chunks(16) {
            // Group into small single-type batches (the batched API).
            let inserts: Vec<(u32, u32)> = chunk
                .iter()
                .filter_map(|op| match op {
                    Op::Insert(k, v) => Some((*k, *v)),
                    _ => None,
                })
                .collect();
            let deletes: Vec<u32> = chunk
                .iter()
                .filter_map(|op| match op {
                    Op::Delete(k) => Some(*k),
                    _ => None,
                })
                .collect();
            let finds: Vec<u32> = chunk
                .iter()
                .filter_map(|op| match op {
                    Op::Find(k) => Some(*k),
                    _ => None,
                })
                .collect();

            if !inserts.is_empty() {
                // Within-batch duplicate updates are order-dependent in a
                // real concurrent batch; keep the reference deterministic
                // by deduplicating to the last write.
                let mut dedup: HashMap<u32, u32> = HashMap::new();
                for &(k, v) in &inserts {
                    dedup.insert(k, v);
                }
                let batch: Vec<(u32, u32)> = dedup.into_iter().collect();
                table.insert_batch(&mut sim, &batch).unwrap();
                for (k, v) in batch {
                    reference.insert(k, v);
                }
            }
            if !deletes.is_empty() {
                let report = table.delete_batch(&mut sim, &deletes).unwrap();
                let mut expect = 0;
                let mut seen = std::collections::HashSet::new();
                for &k in &deletes {
                    if reference.remove(&k).is_some() && seen.insert(k) {
                        expect += 1;
                    }
                }
                prop_assert_eq!(report.deleted, expect as u64);
            }
            if !finds.is_empty() {
                let got = table.find_batch(&mut sim, &finds);
                for (k, g) in finds.iter().zip(got) {
                    prop_assert_eq!(g, reference.get(k).copied(), "key {}", k);
                }
            }

            // Structural invariants after every batch.
            prop_assert_eq!(table.len(), reference.len() as u64);
            prop_assert!(table.size_ratio_ok());
            table.verify_integrity().map_err(|e| {
                TestCaseError::fail(format!("integrity: {e}"))
            })?;
            let theta = table.fill_factor();
            prop_assert!(
                theta <= table.config().beta + 1e-9,
                "θ = {} above β after rebalance", theta
            );
        }
    }

    /// The two-lookup guarantee: any find batch touches at most 2 buckets
    /// per key under the two-layer scheme.
    #[test]
    fn finds_probe_at_most_two_buckets(keys in vec(1u32..100_000, 1..300)) {
        let mut sim = SimContext::new();
        let mut table =
            DyCuckoo::new(small_config(Layering::TwoLayer, Distribution::Balanced), &mut sim)
                .unwrap();
        let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k)).collect();
        table.insert_batch(&mut sim, &kvs).unwrap();
        sim.take_metrics();
        table.find_batch(&mut sim, &keys);
        let m = sim.take_metrics();
        prop_assert!(m.lookups <= 2 * keys.len() as u64);
    }

    /// Determinism: identical inputs produce identical metrics and state.
    #[test]
    fn batches_replay_identically(keys in vec(1u32..10_000, 1..200)) {
        let run = || {
            let mut sim = SimContext::new();
            let mut table = DyCuckoo::new(
                small_config(Layering::TwoLayer, Distribution::Balanced),
                &mut sim,
            )
            .unwrap();
            let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k ^ 7)).collect();
            table.insert_batch(&mut sim, &kvs).unwrap();
            (table.len(), table.fill_factor().to_bits(), sim.take_metrics())
        };
        prop_assert_eq!(run(), run());
    }

    /// All layerings and distributions keep find-after-insert correct.
    #[test]
    fn all_modes_roundtrip(
        keys in vec(1u32..50_000, 1..200),
        layering_idx in 0usize..3,
        dist_idx in 0usize..2,
    ) {
        let layering = [Layering::TwoLayer, Layering::DisjointPairs, Layering::PlainD]
            [layering_idx];
        let distribution = [Distribution::Balanced, Distribution::Uniform][dist_idx];
        let mut sim = SimContext::new();
        let mut table = DyCuckoo::new(small_config(layering, distribution), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k.wrapping_mul(3))).collect();
        table.insert_batch(&mut sim, &kvs).unwrap();
        table.verify_integrity().map_err(|e| {
            TestCaseError::fail(format!("integrity: {e}"))
        })?;
        let found = table.find_batch(&mut sim, &keys);
        for (k, f) in keys.iter().zip(found) {
            prop_assert_eq!(f, Some(k.wrapping_mul(3)), "key {}", k);
        }
    }

    /// Upsizing is conflict-free and lossless: forcing resizes at any point
    /// never loses a key.
    #[test]
    fn forced_resizes_preserve_content(
        raw_keys in vec(1u32..50_000, 10..300),
        grow_first in any::<bool>(),
    ) {
        // Deduplicate: concurrent same-key inserts in one batch may land
        // two copies (the documented intra-batch race), and a later resize
        // can legitimately merge them — which would look like a "lost" key
        // to this count-based assertion.
        let mut seen = std::collections::HashSet::new();
        let keys: Vec<u32> = raw_keys.into_iter().filter(|&k| seen.insert(k)).collect();
        let mut sim = SimContext::new();
        let mut table =
            DyCuckoo::new(small_config(Layering::TwoLayer, Distribution::Balanced), &mut sim)
                .unwrap();
        let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k)).collect();
        table.insert_batch(&mut sim, &kvs).unwrap();
        let before = table.len();
        prop_assert_eq!(before, keys.len() as u64);
        for i in 0..table.config().num_tables {
            let op = if grow_first {
                dycuckoo::ResizeOp::Upsize(i)
            } else {
                dycuckoo::ResizeOp::Downsize(i)
            };
            // Downsizing a 1-bucket (or odd) table is not possible; skip.
            let n = table.stats().per_table[i].n_buckets;
            if matches!(op, dycuckoo::ResizeOp::Downsize(_)) && (n < 2 || !n.is_multiple_of(2)) {
                continue;
            }
            table.force_resize(&mut sim, op).unwrap();
            table.verify_integrity().map_err(|e| {
                TestCaseError::fail(format!("integrity: {e}"))
            })?;
        }
        prop_assert_eq!(table.len(), before);
        let found = table.find_batch(&mut sim, &keys);
        prop_assert!(found.iter().all(|f| f.is_some()));
    }

    /// The wide-key table agrees with a reference map across inserts,
    /// updates and deletes, while honouring the two-lookup guarantee.
    #[test]
    fn wide_table_matches_reference(
        raw_keys in vec(1u64..u64::MAX, 1..250),
        delete_mask in vec(any::<bool>(), 250),
    ) {
        let mut seen = std::collections::HashSet::new();
        let keys: Vec<u64> = raw_keys.into_iter().filter(|&k| seen.insert(k)).collect();
        let mut sim = SimContext::new();
        let mut table = WideDyCuckoo::new(4, 2, 3, &mut sim).unwrap();
        let kvs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k ^ 0xFF)).collect();
        table.insert_batch(&mut sim, &kvs).unwrap();
        prop_assert_eq!(table.len(), keys.len() as u64);

        // Update all values in place.
        let updates: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k.wrapping_add(1))).collect();
        table.insert_batch(&mut sim, &updates).unwrap();
        prop_assert_eq!(table.len(), keys.len() as u64);

        // Delete a subset.
        let deletes: Vec<u64> = keys
            .iter()
            .zip(delete_mask.iter().cycle())
            .filter(|(_, &d)| d)
            .map(|(&k, _)| k)
            .collect();
        let deleted = table.delete_batch(&mut sim, &deletes);
        prop_assert_eq!(deleted, deletes.len() as u64);

        let dead: std::collections::HashSet<u64> = deletes.into_iter().collect();
        sim.take_metrics();
        let found = table.find_batch(&mut sim, &keys);
        let m = sim.take_metrics();
        prop_assert!(m.lookups <= 2 * keys.len() as u64, "two-lookup guarantee");
        for (k, f) in keys.iter().zip(found) {
            let expect = if dead.contains(k) { None } else { Some(k.wrapping_add(1)) };
            prop_assert_eq!(f, expect, "key {:#x}", k);
        }
    }
}

/// Run one full stash workload — spill, mutate while spilled, drain via a
/// forced resize — under `policy`, returning the final find results and
/// whether the stash was ever occupied.
fn stash_workload(policy: SchedulePolicy) -> (Vec<Option<u32>>, u64, bool) {
    // A tiny table with a 1-eviction chain limit, literal Algorithm 1
    // insertion (no reroute before evicting), and a β high enough that
    // load-factor resizing does not rescue full bucket pairs: failed chains
    // must go through the stash.
    let cfg = Config {
        initial_buckets: 2,
        eviction_limit: 1,
        beta: 0.95,
        reroute_before_evict: false,
        stash_capacity: 8,
        schedule: policy,
        ..Config::default()
    };
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(cfg, &mut sim).unwrap();
    let mut reference = HashMap::new();
    let mut spilled = false;
    let keys: Vec<u32> = (1u32..=220).collect();
    for chunk in keys.chunks(24) {
        let kvs: Vec<(u32, u32)> = chunk.iter().map(|&k| (k, k.wrapping_mul(5))).collect();
        table.insert_batch(&mut sim, &kvs).unwrap();
        for &(k, v) in &kvs {
            reference.insert(k, v);
        }
        spilled |= table.stashed() > 0;
    }
    // Mutate while keys may be parked in the stash: update a stripe and
    // delete another, exercising the stash update/erase paths.
    let updates: Vec<(u32, u32)> = keys
        .iter()
        .filter(|k| *k % 3 == 0)
        .map(|&k| (k, k.wrapping_mul(9)))
        .collect();
    table.insert_batch(&mut sim, &updates).unwrap();
    for &(k, v) in &updates {
        reference.insert(k, v);
    }
    let deletes: Vec<u32> = keys.iter().filter(|k| *k % 7 == 0).copied().collect();
    table.delete_batch(&mut sim, &deletes).unwrap();
    for k in &deletes {
        reference.remove(k);
    }
    spilled |= table.stashed() > 0;
    // A structural resize drains the stash back into the subtables.
    table
        .force_resize(&mut sim, dycuckoo::ResizeOp::Upsize(0))
        .unwrap();
    table.verify_integrity().unwrap();
    assert_eq!(table.len(), reference.len() as u64);
    let found = table.find_batch(&mut sim, &keys);
    for (k, f) in keys.iter().zip(&found) {
        assert_eq!(*f, reference.get(k).copied(), "key {k}");
    }
    (found, table.len(), spilled)
}

/// Stash spill and drain stay correct — and agree with the reference map —
/// under eight different warp-scheduling policies, and every policy
/// converges to the same final contents.
#[test]
fn stash_spill_drain_agrees_across_schedules() {
    let baseline = stash_workload(SchedulePolicy::from_seed(0));
    let mut ever_spilled = baseline.2;
    for seed in 1..8u64 {
        let run = stash_workload(SchedulePolicy::from_seed(seed));
        assert_eq!(
            (&run.0, run.1),
            (&baseline.0, baseline.1),
            "schedule seed {seed} diverged from the fixed-order baseline"
        );
        ever_spilled |= run.2;
    }
    // The workload is built to overflow 1-eviction chains; if nothing ever
    // reached the stash, this test is not testing the stash.
    assert!(ever_spilled, "workload never exercised the stash");
}

proptest! {
    // Each case replays the full sequence under 8 schedules; keep the case
    // count modest so the suite stays fast in debug builds.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mixed-width batches (keys below and above `u32::MAX` interleaved in
    /// the same batch) agree with a reference map under ≥8 schedule seeds,
    /// and all schedules agree with each other.
    #[test]
    fn wide_mixed_width_batches_match_reference(
        raw in vec((any::<bool>(), 1u64..u32::MAX as u64), 1..120),
        delete_mask in vec(any::<bool>(), 120),
    ) {
        // Narrow keys stay in the 32-bit range; wide keys get high bits so
        // both halves of the 64-bit path are exercised in every batch.
        let mut seen = std::collections::HashSet::new();
        let keys: Vec<u64> = raw
            .iter()
            .map(|&(wide, k)| if wide { k | 0xABCD_0000_0000_0000 } else { k })
            .filter(|&k| seen.insert(k))
            .collect();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for &k in &keys {
            reference.insert(k, k ^ 0x5A5A);
        }
        let deletes: Vec<u64> = keys
            .iter()
            .zip(delete_mask.iter().cycle())
            .filter(|(_, &d)| d)
            .map(|(&k, _)| k)
            .collect();
        for k in &deletes {
            reference.remove(k);
        }

        let run = |policy: SchedulePolicy| {
            let mut sim = SimContext::new();
            let mut table = WideDyCuckoo::new(4, 2, 3, &mut sim).unwrap();
            table.set_schedule(policy);
            for chunk in keys.chunks(16) {
                let kvs: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, k ^ 0x5A5A)).collect();
                table.insert_batch(&mut sim, &kvs).unwrap();
            }
            let deleted = table.delete_batch(&mut sim, &deletes);
            assert_eq!(deleted, deletes.len() as u64);
            (table.find_batch(&mut sim, &keys), table.len())
        };

        let baseline = run(SchedulePolicy::from_seed(0));
        prop_assert_eq!(baseline.1, reference.len() as u64);
        for (k, f) in keys.iter().zip(&baseline.0) {
            prop_assert_eq!(*f, reference.get(k).copied(), "key {:#x}", k);
        }
        for seed in 1..8u64 {
            let other = run(SchedulePolicy::from_seed(seed));
            prop_assert_eq!(
                (&other.0, other.1),
                (&baseline.0, baseline.1),
                "schedule seed {} diverged", seed
            );
        }
    }
}
