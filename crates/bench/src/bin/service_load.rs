//! **service_load** — deterministic closed-loop load generator for the
//! `kv-service` layer.
//!
//! Replays the paper's dynamic workload (inserts + finds + r·deletes per
//! batch, growth phase then shrink phase) through a sharded, batching
//! [`kv_service::KvService`] as an open-loop arrival stream at a
//! configurable offered load, then reports throughput, latency quantiles,
//! and shed behaviour.
//!
//! Three runs are performed:
//!
//! 1. **nominal** offered load (80% of service capacity) — twice, and the
//!    final metrics CSVs are compared byte-for-byte (the determinism
//!    check);
//! 2. **overload** at `SERVICE_OVERLOAD` × capacity (default 2×) — demand
//!    beyond capacity must surface as typed `Overloaded`/`Shed` refusals
//!    while every queue stays inside its bound.
//!
//! Environment knobs (all deterministic):
//!
//! * `REPRO_SCALE` / `REPRO_SEED` — the workspace-wide dataset controls;
//! * `SERVICE_SHARDS` — shard count (default 4, power of two);
//! * `SERVICE_RATE` — nominal offered load as a fraction of service
//!   capacity (default 0.8);
//! * `SERVICE_OVERLOAD` — overload multiplier vs capacity (default 2.0);
//! * `SERVICE_CSV=1` — dump the full per-shard CSV snapshots.
//!
//! With `--threads N` (or `SERVICE_THREADS=N`), a host-par wall-clock
//! section follows: the nominal run repeats under `Backend::HostPar` at
//! 1, 2, … N worker threads, each run's metrics CSV is required to match
//! the sim run byte-for-byte, and real elapsed time is reported as
//! ops/sec with scaling vs the 1-thread run. Wall-clock numbers are
//! machine-dependent by nature, so the section prints only when asked
//! and registers nothing — the pinned telemetry snapshot stays
//! byte-identical.

use bench::telemetry::Telemetry;
use bench::{scale, seed};
use dycuckoo::Config;
use gpu_sim::SimContext;
use kv_service::{AdmitError, Backend, KvService, Op, ServiceConfig, Snapshot};
use workloads::stream::{RequestStream, StreamOp};
use workloads::{DatasetSpec, DynamicWorkload};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&v| v > 0.0)
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Outcome of one load run.
struct RunResult {
    csv: String,
    snapshot: Snapshot,
    ticks: u64,
    offered: u64,
    completed: u64,
    shed_overloaded: u64,
    shed_reads: u64,
    zero_key: u64,
    max_depth: usize,
    p50: u64,
    p99: u64,
    mops: f64,
}

fn run(stream: &RequestStream, svc_cfg: &ServiceConfig, rate: f64, dump_csv: bool) -> RunResult {
    let mut sim = SimContext::new();
    let mut svc = match KvService::new(svc_cfg.clone(), &mut sim) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("service_load: {e}");
            std::process::exit(2);
        }
    };
    let mut offered = 0u64;
    let mut shed_overloaded = 0u64;
    let mut shed_reads = 0u64;
    let mut zero_key = 0u64;

    for slice in stream.paced(rate) {
        for req in slice {
            offered += 1;
            let op = match req.op {
                StreamOp::Insert(k, v) => Op::Put(k, v),
                StreamOp::Find(k) => Op::Get(k),
                StreamOp::Delete(k) => Op::Delete(k),
            };
            match svc.submit(req.client, op) {
                Ok(_) => {}
                Err(AdmitError::Overloaded { .. }) => shed_overloaded += 1,
                Err(AdmitError::Shed { .. }) => shed_reads += 1,
                Err(AdmitError::ZeroKey) => zero_key += 1,
            }
        }
        svc.tick(&mut sim).expect("tick");
    }
    // Drain: keep ticking until every queue is empty (deadline flushes).
    while svc.queue_depths().iter().any(|&d| d > 0) {
        svc.tick(&mut sim).expect("drain tick");
    }

    let snapshot = svc.snapshot();
    let total = snapshot.total.m.clone();
    if dump_csv {
        println!("{}", snapshot.to_csv());
    }
    RunResult {
        csv: snapshot.to_csv(),
        snapshot,
        ticks: svc.clock(),
        offered,
        completed: total.completed,
        shed_overloaded,
        shed_reads,
        zero_key,
        max_depth: total.max_queue_depth,
        p50: total.latency.quantile(0.5),
        p99: total.latency.quantile(0.99),
        mops: total.mops(),
    }
}

fn report(label: &str, r: &RunResult) {
    let shed_total = r.shed_overloaded + r.shed_reads;
    let shed_rate = shed_total as f64 / r.offered.max(1) as f64;
    println!("--- {label} ---");
    println!(
        "  offered        {:>10} requests over {} ticks",
        r.offered, r.ticks
    );
    println!("  completed      {:>10}", r.completed);
    println!(
        "  shed           {:>10}  ({:.2}% of offered: {} overloaded, {} reads shed)",
        shed_total,
        shed_rate * 100.0,
        r.shed_overloaded,
        r.shed_reads
    );
    if r.zero_key > 0 {
        println!("  zero-key       {:>10}", r.zero_key);
    }
    println!("  max queue      {:>10}", r.max_depth);
    println!("  latency ticks        p50 {:>5}   p99 {:>5}", r.p50, r.p99);
    println!(
        "  table throughput {:>10.2} Mops (simulated kernel time)",
        r.mops
    );
}

/// Register one run's per-shard and total counters into the unified
/// registry under `run=<label>` / `shard=<row>` labels.
fn register_run(reg: &mut obs::Registry, run: &str, snap: &Snapshot) {
    for row in snap.shards.iter().chain(std::iter::once(&snap.total)) {
        let shard = row.label.replace(' ', "_");
        row.m.register_into(
            reg,
            &[("figure", "service_load"), ("run", run), ("shard", &shard)],
        );
    }
}

/// `--threads N` from argv, falling back to `SERVICE_THREADS`; 0 means
/// the wall-clock section is off (the default).
fn threads_arg() -> usize {
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--threads" {
            match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => return n,
                _ => {
                    eprintln!("service_load: --threads wants a positive count");
                    std::process::exit(2);
                }
            }
        }
    }
    env_usize("SERVICE_THREADS", 0)
}

fn main() {
    let mut tel = Telemetry::from_env();
    let scale = scale();
    let seed = seed();
    let shards = env_usize("SERVICE_SHARDS", 4);
    let threads = threads_arg();
    let nominal_frac = env_f64("SERVICE_RATE", 0.8);
    let overload_mult = env_f64("SERVICE_OVERLOAD", 2.0);
    let dump_csv = std::env::var("SERVICE_CSV").is_ok_and(|v| v == "1");

    // The paper's RAND-like dataset, scaled like every other experiment.
    let spec = DatasetSpec {
        name: "RAND",
        total_pairs: (10_000_000.0 * scale).round() as usize,
        unique_keys: (10_000_000.0 * scale).round() as usize,
        zipf_s: 0.0,
        max_dup: 1,
    };
    let ds = spec.generate(seed);
    let batch = (ds.len() / 10).max(500);
    let workload = DynamicWorkload::build(&ds, batch, 0.2, seed);
    let stream = RequestStream::from_workload(&workload, 64);

    let svc_cfg = ServiceConfig {
        shards,
        table: Config {
            initial_buckets: ((ds.len() / (shards * 4 * 32 * 4)).max(8)) & !1,
            ..Config::default()
        },
        max_batch: 256,
        max_delay_ticks: 4,
        queue_capacity: 1024,
        shed_watermark: 768,
        seed: seed ^ 0x5E44_1CE0,
        ..ServiceConfig::default()
    };
    // Service capacity: one batch per shard per tick.
    let capacity = (shards * svc_cfg.max_batch) as f64;
    let nominal_rate = capacity * nominal_frac;
    let overload_rate = capacity * overload_mult;

    println!(
        "service_load: {} requests, {} shards, capacity {:.0} req/tick (scale={scale}, seed={seed})",
        stream.len(),
        shards,
        capacity
    );

    // Nominal run, twice — determinism check on the rendered metrics.
    let a = run(&stream, &svc_cfg, nominal_rate, dump_csv);
    let b = run(&stream, &svc_cfg, nominal_rate, false);
    report(&format!("nominal ({nominal_frac:.2}x capacity)"), &a);
    if a.csv == b.csv {
        println!("  determinism          PASS (two runs, bit-identical metrics CSV)");
    } else {
        println!("  determinism          FAIL: metrics differ between identical runs");
        std::process::exit(1);
    }

    // Overload run: typed shedding, bounded queues.
    let o = run(&stream, &svc_cfg, overload_rate, dump_csv);
    report(&format!("overload ({overload_mult:.2}x capacity)"), &o);
    register_run(tel.registry(), "nominal", &a.snapshot);
    register_run(tel.registry(), "overload", &o.snapshot);
    tel.finish();
    let bounded = o.max_depth <= svc_cfg.queue_capacity;
    let shed = o.shed_overloaded + o.shed_reads > 0;
    println!(
        "  backpressure         {} (queues {} bound of {}, {} typed refusals)",
        if bounded && shed { "PASS" } else { "FAIL" },
        if bounded { "within" } else { "EXCEEDED" },
        svc_cfg.queue_capacity,
        o.shed_overloaded + o.shed_reads
    );
    if !(bounded && shed) {
        std::process::exit(1);
    }

    // Host-par wall clock: real threads, real time. Every run must still
    // render the sim run's metrics CSV byte-for-byte (the differential);
    // only the elapsed-time column varies by machine, which is why none
    // of this is registered or pinned.
    if threads > 0 {
        println!("--- host-par wall clock ({threads} threads max; not pinned) ---");
        let mut base_secs = None;
        let mut t = 1;
        loop {
            let cfg = ServiceConfig {
                backend: Backend::HostPar { threads: t },
                ..svc_cfg.clone()
            };
            let start = std::time::Instant::now();
            let r = run(&stream, &cfg, nominal_rate, false);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            if r.csv != a.csv {
                println!("  threads={t}  FAIL: host-par metrics CSV diverged from the sim run");
                std::process::exit(1);
            }
            let base = *base_secs.get_or_insert(secs);
            println!(
                "  threads={t:>2}  {:>12.0} ops/sec wall   ({secs:.3}s, {:.2}x vs 1 thread, CSV matches sim)",
                r.completed as f64 / secs,
                base / secs
            );
            if t >= threads {
                break;
            }
            t = (t * 2).min(threads);
        }
    }
}
