//! **Figure 5** — "The performance of atomic operations for increasing
//! conflicts": throughput of `atomicCAS` and `atomicExch` versus an
//! equivalent amount of coalesced sequential device-memory IO, as the
//! number of atomics conflicting on one address grows.
//!
//! Paper shape to reproduce: at conflict count 1 atomics are roughly on par
//! with sequential IO; as conflicts grow, atomic throughput collapses while
//! the IO baseline stays flat — the motivation for the voter scheme.

use bench::report::{fmt_mops, Table};
use gpu_sim::{CostModel, Locks, Metrics, RoundCtx, SimContext};

/// One experiment: issue `total` atomics grouped into conflict sets of
/// `conflicts`, one round, and return the Mops.
fn atomic_mops(total: u64, conflicts: u64, cas: bool) -> f64 {
    let mut sim = SimContext::new();
    let groups = total / conflicts;
    let mut locks = Locks::new(groups as usize);
    let mut ctx = RoundCtx::new(&mut sim.metrics);
    for g in 0..groups {
        for _ in 0..conflicts {
            if cas {
                // Contending CAS on the group's lock word (first wins).
                ctx.atomic_cas_lock(&mut locks, 0, g as usize);
            } else {
                // atomicExch always succeeds but still serializes.
                ctx.raw_atomic(1, g as usize);
            }
        }
    }
    ctx.finish();
    sim.metrics.rounds = 1;
    CostModel::new(sim.device.config()).mops(total, &sim.metrics)
}

/// Baseline: the same volume as coalesced sequential reads.
fn sequential_io_mops(total: u64) -> f64 {
    let sim = SimContext::new();
    let metrics = Metrics {
        read_transactions: total,
        rounds: 1,
        ops: total,
        ..Metrics::default()
    };
    CostModel::new(sim.device.config()).mops(total, &metrics)
}

fn main() {
    let total: u64 = 1 << 15;
    println!("Figure 5: atomic operations vs conflicts ({total} ops per point)");

    let mut t = Table::new(&["conflicts", "atomicCAS", "atomicExch", "sequential IO"]);
    for exp in 0..=15 {
        let conflicts = 1u64 << exp;
        t.row(vec![
            conflicts.to_string(),
            fmt_mops(atomic_mops(total, conflicts, true)),
            fmt_mops(atomic_mops(total, conflicts, false)),
            fmt_mops(sequential_io_mops(total)),
        ]);
    }
    t.print("Figure 5: throughput (Mops) vs conflicting atomics per address");
}
