//! **Figure 14** — "Throughput for varying β": the dynamic workload with
//! the filled-factor upper bound β ∈ {70% … 90%} (α = 20%, r = 0.2),
//! comparing MegaKV and DyCuckoo.
//!
//! Paper shape to reproduce: β barely moves either scheme — a higher bound
//! slows inserts (fuller tables) but triggers fewer resizes, and the two
//! effects cancel.
//!
//! (α is set to 20% rather than the usual 30% so that the smallest β of the
//! sweep still satisfies the convergence condition α < β·d/(d+1).)

use bench::driver::{build_dynamic, run_dynamic, Scheme};
use bench::report::{fmt_mops, Table};
use bench::{scale, seed};
use gpu_sim::SimContext;
use workloads::{paper_datasets, DynamicWorkload};

fn main() {
    let scale = scale();
    let seed = seed();
    let batch = ((1_000_000.0 * scale).round() as usize).max(1000);
    let alpha = 0.20;
    println!("Figure 14: dynamic throughput vs β (α={alpha}, r=0.2, batch={batch}, scale={scale})");

    for spec in paper_datasets() {
        let ds = spec.scaled(scale).generate(seed);
        let w = DynamicWorkload::build(&ds, batch, 0.2, seed);
        let mut t = Table::new(&["beta", "MegaKV", "DyCuckoo"]);
        for beta in [0.70, 0.75, 0.80, 0.85, 0.90] {
            let mut row = vec![format!("{:.0}%", beta * 100.0)];
            for scheme in [Scheme::MegaKv, Scheme::DyCuckoo] {
                let mut sim = SimContext::new();
                let mut table = build_dynamic(scheme, alpha, beta, batch, seed, &mut sim);
                let res = run_dynamic(table.as_mut(), &mut sim, &w);
                row.push(fmt_mops(res.mops));
            }
            t.row(row);
        }
        t.print(&format!("Figure 14 [{}]: overall Mops vs β", spec.name));
    }
}
