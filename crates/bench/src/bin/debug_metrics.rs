//! Diagnostic: cost-term breakdown per scheme on one dataset.
//!
//! The per-scheme counters are written into — and read back out of — the
//! unified telemetry registry (`bench::telemetry`), so this binary doubles
//! as a smoke test of the `sim_*` registry namespace. `TELEMETRY_SNAP`
//! dumps the registry it built.
use bench::driver::{build_static, run_static, Scheme};
use bench::telemetry::{metrics_from_registry, Telemetry};
use gpu_sim::{CostModel, SimContext};
use workloads::dataset_by_name;

fn main() {
    let mut tel = Telemetry::from_env();
    let name = std::env::args().nth(1).unwrap_or_else(|| "COM".into());
    let scale = bench::scale();
    let ds = dataset_by_name(&name).unwrap().scaled(scale).generate(1);
    println!(
        "{} scaled: {} pairs, {} unique",
        name,
        ds.len(),
        ds.unique_keys
    );
    let mut runs = Vec::new();
    for scheme in Scheme::static_set() {
        let mut sim = SimContext::new();
        let mut t = build_static(scheme, ds.unique_keys, 0.85, 1, &mut sim);
        let r = run_static(t.as_mut(), &mut sim, &ds, 1000, 7);
        r.insert.metrics.register_into(
            tel.registry(),
            &[
                ("figure", "debug_metrics"),
                ("kernel", "insert"),
                ("scheme", scheme.label()),
            ],
        );
        runs.push((scheme, CostModel::new(sim.device.config()), r.insert.mops));
    }
    // Report from the registry, not the raw measurement: what the unified
    // snapshot holds is what gets printed.
    for (scheme, model, mops) in runs {
        let labels = [
            ("figure", "debug_metrics"),
            ("kernel", "insert"),
            ("scheme", scheme.label()),
        ];
        let m = metrics_from_registry(tel.registry(), &labels);
        println!(
            "{:<9} ins {:7.1} Mops | mem {:9.0} atomic {:9.0} issue {:9.0} ns | coal {} rand {} atomics {} serial {} rounds {} evict {} lockfail {}",
            scheme.label(), mops,
            model.memory_time_ns(&m), model.atomic_time_ns(&m), model.issue_time_ns(&m),
            m.transactions(), m.random_transactions(), m.atomic_ops, m.atomic_serial_units,
            m.rounds, m.evictions, m.lock_failures
        );
    }
    tel.finish();
}
