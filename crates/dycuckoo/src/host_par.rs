//! `host-par`: the dynamic cuckoo table on real OS threads.
//!
//! [`ParTable`] is the second execution backend of this crate. It shares
//! the sim backend's decision core — [`crate::table`]'s `TableShape`
//! (hash parameters, candidate routing, eviction destinations) and
//! [`crate::distribute`]'s Theorem-1 steering — but executes against the
//! engine's lock-striped store ([`StripedStore`]) with
//! `std::thread::scope` workers instead of simulated warps, so throughput
//! is bounded by the host machine, not by the model.
//!
//! ## Concurrency protocol
//!
//! * **Insert (concurrent phase).** Each worker owns a contiguous chunk
//!   of the batch. Per key it locks the stripes covering *every*
//!   candidate bucket, in canonical ascending `(table, stripe)` order
//!   (deadlock-free; `vendor/interleave` pins the protocol), then — with
//!   all candidates visible and claimed — upserts a duplicate in place or
//!   writes the first empty slot of the steered candidate. Because no key
//!   is ever invisible (moves happen only in the sequential phase) and
//!   the whole candidate set is held, the duplicate check is sound and
//!   concurrent inserts of distinct keys commute.
//! * **Insert (sequential overflow drain).** Keys whose candidate buckets
//!   were all full are collected per worker and drained by the calling
//!   thread after the join: classic cuckoo eviction chains, with a
//!   conflict-free subtable doubling when a chain exhausts
//!   `eviction_limit` — the quiesce-point analogue of the sim backend's
//!   upsize-and-retry.
//! * **Find / delete.** Per-key, single-bucket critical sections: a find
//!   probes candidates in order under their stripe guards; a delete's
//!   probe-and-erase happens under one guard, so double deletes of the
//!   same key serialize and erase exactly once.
//!
//! ## Determinism boundary
//!
//! The **logical** outcome — the final key→value map, `len()`, reply
//! values for find/delete batches whose inputs don't race — is
//! schedule-independent: insert batches of distinct keys commute, and the
//! fuzz oracle's differential gate holds `ParTable` to byte-equality with
//! the `gpu-sim` reference map on every seed × policy sweep. The
//! **physical** outcome — which slot a key lands in, which keys overflow,
//! how many grows trigger, contention counters — depends on the OS
//! schedule and is deliberately excluded from the oracle's digest.
//!
//! Metrics and attribution are per-thread (worker-local [`Metrics`],
//! thread-local [`obs::attr`] state) and merged at quiesce points in
//! thread-index order; merging is associative and commutative, so the
//! totals are schedule-independent even though per-thread splits are not.

use gpu_sim::engine::striped::{StripeGuard, StripedStore};
use gpu_sim::{ChargeKind, Metrics};
use obs::attr::{self, Attribution};

use crate::config::Config;
use crate::distribute;
use crate::error::{Error, Result};
use crate::hashfn::splitmix64;
use crate::rmw::MergeRule;
use crate::table::{TableShape, MAX_INSERT_RETRIES};

/// What one insert worker hands back at the join: its overflow keys (in
/// chunk order), inserted/updated counts, and its private metrics and
/// attribution windows for the quiesce-point merge.
type InsertWindow = (Vec<(u32, u32)>, u64, u64, Metrics, Option<Attribution>);

/// What one batch did, from the caller's point of view.
///
/// `inserted` and `updated` are logical counts and schedule-independent;
/// `overflowed` (keys that took the sequential drain) and `grows` are
/// physical counts that may vary run to run under contention.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParReport {
    /// Fresh keys placed (concurrent phase or drain).
    pub inserted: u64,
    /// Existing keys whose value was overwritten in place.
    pub updated: u64,
    /// Keys that fell through to the sequential overflow drain.
    pub overflowed: u64,
    /// Subtable doublings performed by the drain.
    pub grows: u64,
}

/// The host-parallel dynamic cuckoo table. See the module docs for the
/// locking protocol and the determinism boundary.
pub struct ParTable {
    shape: TableShape,
    tables: Vec<StripedStore<u32, u32>>,
    threads: usize,
    buckets_per_stripe: usize,
    metrics: Metrics,
    attribution: Attribution,
    profile: bool,
    grows: u64,
}

/// Outcome of the concurrent-phase placement attempt for one key.
enum Placed {
    Updated,
    Inserted,
    Overflow,
}

/// Candidate-stripe guards held in canonical `(table, stripe)` order.
struct CandGuards<'a> {
    keys: Vec<(usize, usize)>,
    guards: Vec<StripeGuard<'a, u32, u32>>,
}

impl<'a> CandGuards<'a> {
    /// Acquire every listed stripe, canonically ordered. Each acquire is
    /// voter-style: a failed `try_lock` is charged as a lock failure,
    /// then the worker blocks on the same stripe (order is preserved, so
    /// the protocol stays deadlock-free).
    fn acquire(
        tables: &'a [StripedStore<u32, u32>],
        mut keys: Vec<(usize, usize)>,
        m: &mut Metrics,
    ) -> Self {
        keys.sort_unstable();
        keys.dedup();
        let guards = keys
            .iter()
            .map(|&(t, s)| match tables[t].try_lock_stripe(s) {
                Some(g) => g,
                None => {
                    m.charge(ChargeKind::LockFailures, 1);
                    tables[t].lock_stripe(s)
                }
            })
            .collect();
        Self { keys, guards }
    }

    fn guard_mut(&mut self, t: usize, s: usize) -> &mut StripeGuard<'a, u32, u32> {
        let i = self
            .keys
            .iter()
            .position(|&k| k == (t, s))
            .expect("stripe not locked");
        &mut self.guards[i]
    }
}

/// Concurrent-phase placement of one key: all candidate stripes held,
/// merge a duplicate in place (inside the probe-duplicate-then-claim
/// critical section — the guards cover every candidate, so the duplicate
/// check and the merge are one atomic step) or claim an empty slot; full
/// candidates overflow to the drain.
fn par_insert_one(
    shape: &TableShape,
    tables: &[StripedStore<u32, u32>],
    key: u32,
    val: u32,
    rule: MergeRule,
    m: &mut Metrics,
) -> Placed {
    let cands = shape.candidates(key);
    let locs: Vec<(usize, usize, usize)> = cands
        .iter()
        .map(|t| {
            let b = shape.hashes[t].bucket(key, tables[t].n_buckets());
            (t, tables[t].stripe_of(b), b)
        })
        .collect();
    let mut held = CandGuards::acquire(tables, locs.iter().map(|&(t, s, _)| (t, s)).collect(), m);
    // Upsert: with every candidate bucket claimed, a duplicate anywhere
    // is visible — the check is sound under concurrency.
    for &(t, s, b) in &locs {
        m.charge(ChargeKind::Lookups, 1);
        let g = held.guard_mut(t, s);
        if let Some(slot) = g.find_slot(b, key) {
            let new = if rule.reads_old() {
                rule.merge(g.slot(b, slot).1, val)
            } else {
                val
            };
            g.update_val(b, slot, new);
            m.charge(ChargeKind::Ops, 1);
            return Placed::Updated;
        }
    }
    // Fresh insert: steered candidate first, then any other with room.
    let steered = distribute::choose_among_by(
        shape.cfg.distribution,
        |c| distribute::weight_of(tables[c].capacity_slots(), tables[c].occupied()),
        &cands.as_slice_vec(),
        shape.cfg.seed,
        key,
        0,
    );
    let order = locs
        .iter()
        .copied()
        .filter(|&(t, _, _)| t == steered)
        .chain(locs.iter().copied().filter(|&(t, _, _)| t != steered));
    for (t, s, b) in order {
        let g = held.guard_mut(t, s);
        if let Some(slot) = g.find_empty(b) {
            g.write_new(b, slot, key, rule.initial(val));
            m.charge(ChargeKind::Ops, 1);
            return Placed::Inserted;
        }
    }
    Placed::Overflow
}

/// Fold a batch's duplicate keys into one `(key, arg)` per unique key in
/// first-touch order, returning the effective rule (`Count` occurrences
/// normalize to one `Add` of the occurrence count). With unique keys, the
/// concurrent phase applies at most one merge per key against the
/// pre-batch value, so the final map is schedule-independent.
fn coalesce_rmw(kvs: &[(u32, u32)], rule: MergeRule) -> (MergeRule, Vec<(u32, u32)>) {
    let eff = match rule {
        MergeRule::Count => MergeRule::Add,
        r => r,
    };
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(kvs.len());
    let mut index: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &(k, arg) in kvs {
        let a = if rule == MergeRule::Count { 1 } else { arg };
        match index.entry(k) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let i = *e.get();
                out[i].1 = eff.fold_args(out[i].1, a).expect("Count normalized to Add");
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(out.len());
                out.push((k, a));
            }
        }
    }
    (eff, out)
}

impl ParTable {
    /// Create a table with per-bucket striping (the closest analogue of
    /// the sim backend's per-bucket `atomicCAS` locks).
    pub fn new(cfg: Config, threads: usize) -> Result<Self> {
        Self::with_striping(cfg, threads, 1)
    }

    /// Create a table with `buckets_per_stripe` buckets per lock.
    pub fn with_striping(cfg: Config, threads: usize, buckets_per_stripe: usize) -> Result<Self> {
        cfg.validate()?;
        if threads == 0 {
            return Err(Error::InvalidConfig(
                "host-par needs at least one worker thread".to_string(),
            ));
        }
        let shape = TableShape::from_config(cfg);
        let tables = (0..cfg.num_tables)
            .map(|_| StripedStore::new(cfg.initial_buckets, cfg.layout, buckets_per_stripe))
            .collect();
        Ok(Self {
            shape,
            tables,
            threads,
            buckets_per_stripe,
            metrics: Metrics::default(),
            attribution: Attribution::default(),
            profile: false,
            grows: 0,
        })
    }

    /// The table's configuration.
    pub fn config(&self) -> &Config {
        &self.shape.cfg
    }

    /// Worker threads used per batch.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Change the worker-thread count (takes effect on the next batch).
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "host-par needs at least one worker thread");
        self.threads = threads;
    }

    /// Live KV pairs.
    pub fn len(&self) -> u64 {
        self.tables.iter().map(|t| t.occupied()).sum()
    }

    /// Whether the table holds no KV pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total key slots across all subtables.
    pub fn capacity_slots(&self) -> u64 {
        self.tables.iter().map(|t| t.capacity_slots()).sum()
    }

    /// Subtable doublings performed so far.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Metrics merged from every worker so far (thread-index merge order;
    /// totals are schedule-independent).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Reset the metrics window, returning what was accumulated.
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(&mut self.metrics)
    }

    /// Enable/disable per-thread cost attribution. While enabled, batch
    /// calls own the **calling thread's** thread-local `obs::attr` state
    /// during the sequential drain (an active caller profiler would be
    /// clobbered), and every worker's attribution window is merged into
    /// [`ParTable::take_attribution`].
    pub fn set_profiling(&mut self, on: bool) {
        self.profile = on;
    }

    /// Drain the merged per-thread attribution accumulated while
    /// profiling was enabled.
    pub fn take_attribution(&mut self) -> Attribution {
        std::mem::take(&mut self.attribution)
    }

    fn bucket_of(&self, t: usize, key: u32) -> usize {
        self.shape.hashes[t].bucket(key, self.tables[t].n_buckets())
    }

    /// Chunk length that spreads `n` items over the worker threads.
    fn chunk_len(&self, n: usize) -> usize {
        n.div_ceil(self.threads).max(1)
    }

    /// Insert (upsert) a batch. Concurrent phase on scoped worker
    /// threads, then the sequential overflow drain; returns the batch
    /// report. Key 0 is reserved and rejected, as in the sim backend.
    pub fn insert_batch(&mut self, kvs: &[(u32, u32)]) -> Result<ParReport> {
        if kvs.iter().any(|&(k, _)| k == 0) {
            return Err(Error::ZeroKey);
        }
        self.batch_impl(kvs, MergeRule::LastWrite)
    }

    /// Read-modify-write a batch under `rule` (host-par analogue of
    /// [`crate::DyCuckoo::upsert_batch`]): absent keys insert
    /// `rule.initial(arg)`, present keys merge inside the candidate-guard
    /// critical section. Duplicate keys are pre-coalesced in submission
    /// order, so the final logical map matches the sim backend at any
    /// thread count.
    pub fn upsert_batch(&mut self, kvs: &[(u32, u32)], rule: MergeRule) -> Result<ParReport> {
        if kvs.iter().any(|&(k, _)| k == 0) {
            return Err(Error::ZeroKey);
        }
        let (eff, entries) = coalesce_rmw(kvs, rule);
        self.batch_impl(&entries, eff)
    }

    /// Counting-table special case: bump each key's counter by its number
    /// of occurrences in the batch, inserting absent keys at their count.
    pub fn increment_batch(&mut self, keys: &[u32]) -> Result<ParReport> {
        let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, 0)).collect();
        self.upsert_batch(&kvs, MergeRule::Count)
    }

    fn batch_impl(&mut self, kvs: &[(u32, u32)], rule: MergeRule) -> Result<ParReport> {
        let mut report = ParReport::default();
        if kvs.is_empty() {
            return Ok(report);
        }
        let grows_before = self.grows;
        let shape = &self.shape;
        let tables = &self.tables;
        let profile = self.profile;
        let results: Vec<InsertWindow> = std::thread::scope(|scope| {
            let handles: Vec<_> = kvs
                .chunks(self.chunk_len(kvs.len()))
                .map(|chunk| {
                    scope.spawn(move || {
                        if profile {
                            attr::start();
                        }
                        let mut m = Metrics::default();
                        let mut overflow = Vec::new();
                        let (mut inserted, mut updated) = (0u64, 0u64);
                        for &(k, v) in chunk {
                            match par_insert_one(shape, tables, k, v, rule, &mut m) {
                                Placed::Updated => updated += 1,
                                Placed::Inserted => inserted += 1,
                                Placed::Overflow => overflow.push((k, v)),
                            }
                        }
                        let a = profile.then(attr::stop);
                        (overflow, inserted, updated, m, a)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("host-par insert worker panicked"))
                .collect()
        });
        // Quiesce point: merge per-thread windows in thread-index order
        // and collect the overflow in the same order.
        let mut overflow = Vec::new();
        for (chunk_overflow, inserted, updated, m, a) in results {
            report.inserted += inserted;
            report.updated += updated;
            self.metrics.merge(&m);
            if let Some(a) = a {
                self.attribution.merge(&a);
            }
            overflow.extend(chunk_overflow);
        }
        // Sequential drain: eviction chains and grows, one thread, locks
        // uncontended.
        report.overflowed = overflow.len() as u64;
        if profile {
            attr::start();
        }
        let mut drain_result = Ok(());
        for (k, v) in overflow {
            // An overflowed key is absent (batch keys are unique after
            // coalescing and the dup scan held every candidate), so the
            // drain inserts the materialized initial value.
            if let Err(e) = self.seq_insert(k, rule.initial(v)) {
                drain_result = Err(e);
                break;
            }
            report.inserted += 1;
        }
        if profile {
            let a = attr::stop();
            self.attribution.merge(&a);
        }
        drain_result?;
        report.grows = self.grows - grows_before;
        Ok(report)
    }

    /// Place one key sequentially, doubling a subtable and retrying with
    /// the homeless pair whenever an eviction chain exhausts the limit.
    fn seq_insert(&mut self, key: u32, val: u32) -> Result<()> {
        let (mut k, mut v) = (key, val);
        for _ in 0..MAX_INSERT_RETRIES {
            match self.seq_try_place(k, v) {
                None => return Ok(()),
                Some((hk, hv)) => {
                    self.grow_smallest();
                    (k, v) = (hk, hv);
                }
            }
        }
        Err(Error::InsertStuck { failed_ops: 1 })
    }

    /// One sequential placement attempt. `None` on success; on eviction
    /// failure, the pair left holding no slot (for retry after a grow).
    fn seq_try_place(&mut self, key: u32, val: u32) -> Option<(u32, u32)> {
        let cands = self.shape.candidates(key);
        // Upsert check across all candidates.
        for t in cands.iter() {
            let b = self.bucket_of(t, key);
            self.metrics.charge(ChargeKind::Lookups, 1);
            let store = &self.tables[t];
            let mut g = store.lock_stripe(store.stripe_of(b));
            if let Some(s) = g.find_slot(b, key) {
                g.update_val(b, s, val);
                self.metrics.charge(ChargeKind::Ops, 1);
                return None;
            }
        }
        let steered = distribute::choose_among_by(
            self.shape.cfg.distribution,
            |c| distribute::weight_of(self.tables[c].capacity_slots(), self.tables[c].occupied()),
            &cands.as_slice_vec(),
            self.shape.cfg.seed,
            key,
            0,
        );
        // Room in any candidate, steered first?
        for t in std::iter::once(steered).chain(cands.iter().filter(|&t| t != steered)) {
            let b = self.bucket_of(t, key);
            let store = &self.tables[t];
            let mut g = store.lock_stripe(store.stripe_of(b));
            if let Some(s) = g.find_empty(b) {
                g.write_new(b, s, key, val);
                self.metrics.charge(ChargeKind::Ops, 1);
                return None;
            }
        }
        // Eviction chain from the steered bucket.
        let (mut k, mut v, mut t) = (key, val, steered);
        for depth in 0..self.shape.cfg.eviction_limit as u64 {
            let b = self.bucket_of(t, k);
            let store = &self.tables[t];
            let mut g = store.lock_stripe(store.stripe_of(b));
            if let Some(s) = g.find_empty(b) {
                g.write_new(b, s, k, v);
                self.metrics.charge(ChargeKind::Ops, 1);
                return None;
            }
            // Uniform deterministic victim (randomized so chains don't
            // cycle; physical placement is outside the oracle's digest).
            let slots = store.slots_per_bucket() as u64;
            let slot =
                (splitmix64(self.shape.cfg.seed ^ ((k as u64) << 20) ^ depth) % slots) as usize;
            let (vk, vv) = g.swap(b, slot, k, v);
            drop(g);
            self.metrics.charge(ChargeKind::Evictions, 1);
            let vc = self.shape.candidates(vk);
            let viable: Vec<usize> = vc.iter().filter(|&c| c != t).collect();
            debug_assert!(!viable.is_empty(), "victim with no alternate subtable");
            let dest = distribute::choose_among_by(
                self.shape.cfg.distribution,
                |c| {
                    distribute::weight_of(
                        self.tables[c].capacity_slots(),
                        self.tables[c].occupied(),
                    )
                },
                &viable,
                self.shape.cfg.seed,
                vk,
                depth + 1,
            );
            (k, v, t) = (vk, vv, dest);
        }
        Some((k, v))
    }

    /// Double the smallest subtable, rehashing its pairs. Conflict-free:
    /// under doubling, a key's bucket either stays or moves up by the old
    /// count, so no destination bucket can overfill.
    fn grow_smallest(&mut self) {
        let t = (0..self.tables.len())
            .min_by_key(|&i| (self.tables[i].capacity_slots(), i))
            .expect("at least two subtables");
        let n_new = self.tables[t].n_buckets() * 2;
        let mut old = std::mem::replace(
            &mut self.tables[t],
            StripedStore::new(n_new, self.shape.cfg.layout, self.buckets_per_stripe),
        );
        for (k, v) in old.live_pairs() {
            let b = self.shape.hashes[t].bucket(k, n_new);
            let store = &self.tables[t];
            let mut g = store.lock_stripe(store.stripe_of(b));
            let s = g
                .find_empty(b)
                .expect("conflict-free doubling cannot overfill a bucket");
            g.write_new(b, s, k, v);
        }
        self.grows += 1;
    }

    /// Look up a batch of keys on the worker threads; results align with
    /// `keys`. Key 0 (the empty sentinel) always misses.
    pub fn find_batch(&mut self, keys: &[u32]) -> Vec<Option<u32>> {
        if keys.is_empty() {
            return Vec::new();
        }
        let shape = &self.shape;
        let tables = &self.tables;
        let profile = self.profile;
        let results: Vec<(Vec<Option<u32>>, Metrics, Option<Attribution>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = keys
                    .chunks(self.chunk_len(keys.len()))
                    .map(|chunk| {
                        scope.spawn(move || {
                            if profile {
                                attr::start();
                            }
                            let mut m = Metrics::default();
                            let out = chunk
                                .iter()
                                .map(|&key| {
                                    if key == 0 {
                                        return None;
                                    }
                                    let mut hit = None;
                                    for t in shape.candidates(key).iter() {
                                        let b = shape.hashes[t].bucket(key, tables[t].n_buckets());
                                        m.charge(ChargeKind::Lookups, 1);
                                        let g = match tables[t]
                                            .try_lock_stripe(tables[t].stripe_of(b))
                                        {
                                            Some(g) => g,
                                            None => {
                                                m.charge(ChargeKind::LockFailures, 1);
                                                tables[t].lock_stripe(tables[t].stripe_of(b))
                                            }
                                        };
                                        if let Some(s) = g.find_slot(b, key) {
                                            hit = Some(g.slot(b, s).1);
                                            break;
                                        }
                                    }
                                    m.charge(ChargeKind::Ops, 1);
                                    hit
                                })
                                .collect();
                            let a = profile.then(attr::stop);
                            (out, m, a)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("host-par find worker panicked"))
                    .collect()
            });
        let mut out = Vec::with_capacity(keys.len());
        for (chunk_out, m, a) in results {
            out.extend(chunk_out);
            self.metrics.merge(&m);
            if let Some(a) = a {
                self.attribution.merge(&a);
            }
        }
        out
    }

    /// Delete a batch of keys on the worker threads, returning how many
    /// live keys were erased. Probe-and-erase is a single critical
    /// section per bucket, so duplicate keys in one batch erase once.
    pub fn delete_batch(&mut self, keys: &[u32]) -> u64 {
        if keys.is_empty() {
            return 0;
        }
        let shape = &self.shape;
        let tables = &self.tables;
        let profile = self.profile;
        let results: Vec<(u64, Metrics, Option<Attribution>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = keys
                .chunks(self.chunk_len(keys.len()))
                .map(|chunk| {
                    scope.spawn(move || {
                        if profile {
                            attr::start();
                        }
                        let mut m = Metrics::default();
                        let mut erased = 0u64;
                        for &key in chunk {
                            if key == 0 {
                                continue;
                            }
                            for t in shape.candidates(key).iter() {
                                let b = shape.hashes[t].bucket(key, tables[t].n_buckets());
                                m.charge(ChargeKind::Lookups, 1);
                                let mut g = match tables[t].try_lock_stripe(tables[t].stripe_of(b))
                                {
                                    Some(g) => g,
                                    None => {
                                        m.charge(ChargeKind::LockFailures, 1);
                                        tables[t].lock_stripe(tables[t].stripe_of(b))
                                    }
                                };
                                if let Some(s) = g.find_slot(b, key) {
                                    g.erase(b, s);
                                    erased += 1;
                                    break;
                                }
                            }
                            m.charge(ChargeKind::Ops, 1);
                        }
                        let a = profile.then(attr::stop);
                        (erased, m, a)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("host-par delete worker panicked"))
                .collect()
        });
        let mut erased = 0;
        for (n, m, a) in results {
            erased += n;
            self.metrics.merge(&m);
            if let Some(a) = a {
                self.attribution.merge(&a);
            }
        }
        erased
    }

    /// All live `(key, value)` pairs (unordered across subtables;
    /// oracle-side comparisons sort or build a map). `&mut self` proves
    /// quiescence.
    pub fn live_pairs(&mut self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for t in &mut self.tables {
            out.extend(t.live_pairs());
        }
        out
    }

    /// Structural integrity sweep: occupancy counters match the key
    /// lanes, every live key sits in its hash bucket of a candidate
    /// subtable, and no key is stored twice. Test/debug helper.
    pub fn verify(&mut self) -> std::result::Result<(), String> {
        let mut seen = std::collections::HashMap::new();
        for t in 0..self.tables.len() {
            let occ = self.tables[t].occupied();
            let rec = self.tables[t].recount();
            if occ != rec {
                return Err(format!("table {t}: occupied() = {occ}, recount = {rec}"));
            }
            let bs = self.tables[t].to_bucket_store();
            for b in 0..bs.n_buckets() {
                for &k in bs.bucket_keys(b) {
                    if k == 0 {
                        continue;
                    }
                    let want = self.shape.hashes[t].bucket(k, bs.n_buckets());
                    if want != b {
                        return Err(format!(
                            "table {t}: key {k} in bucket {b}, hashes to {want}"
                        ));
                    }
                    if !self.shape.candidates(k).contains(t) {
                        return Err(format!("key {k} stored outside its candidate set"));
                    }
                    *seen.entry(k).or_insert(0u32) += 1;
                }
            }
        }
        if let Some((k, n)) = seen.iter().find(|&(_, &n)| n > 1) {
            return Err(format!("key {k} stored {n} times"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn cfg() -> Config {
        Config {
            initial_buckets: 4,
            ..Config::default()
        }
    }

    #[test]
    fn insert_find_delete_roundtrip() {
        let mut t = ParTable::new(cfg(), 4).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=500u32).map(|k| (k, k * 7)).collect();
        let r = t.insert_batch(&kvs).unwrap();
        assert_eq!(r.inserted, 500);
        assert_eq!(r.updated, 0);
        assert_eq!(t.len(), 500);
        t.verify().unwrap();
        let keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
        let got = t.find_batch(&keys);
        for (&(k, v), g) in kvs.iter().zip(&got) {
            assert_eq!(*g, Some(v), "key {k}");
        }
        assert_eq!(t.find_batch(&[0, 100_000]), vec![None, None]);
        let erased = t.delete_batch(&keys[..100]);
        assert_eq!(erased, 100);
        assert_eq!(t.len(), 400);
        t.verify().unwrap();
    }

    #[test]
    fn upsert_overwrites_in_place() {
        let mut t = ParTable::new(cfg(), 2).unwrap();
        t.insert_batch(&[(7, 1), (8, 2)]).unwrap();
        let r = t.insert_batch(&[(7, 9)]).unwrap();
        assert_eq!(r.updated, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.find_batch(&[7]), vec![Some(9)]);
    }

    #[test]
    fn final_map_is_schedule_independent() {
        // Same batches under 1 and 8 threads: identical logical content,
        // whatever the interleaving did to physical placement.
        let mut reference: HashMap<u32, u32> = HashMap::new();
        let mut maps = Vec::new();
        for threads in [1usize, 8] {
            let mut t = ParTable::new(cfg(), threads).unwrap();
            for round in 0..6u32 {
                let kvs: Vec<(u32, u32)> = (1..=400u32)
                    .map(|k| (k + (round % 3) * 100, k * 31 + round))
                    .collect();
                t.insert_batch(&kvs).unwrap();
                if threads == 1 {
                    for &(k, v) in &kvs {
                        reference.insert(k, v);
                    }
                }
                let dels: Vec<u32> = (1..=40u32).map(|k| k * 7 + round).collect();
                t.delete_batch(&dels);
                if threads == 1 {
                    for k in &dels {
                        reference.remove(k);
                    }
                }
            }
            t.verify().unwrap();
            let mut pairs = t.live_pairs();
            pairs.sort_unstable();
            maps.push(pairs);
        }
        assert_eq!(maps[0], maps[1]);
        let as_map: HashMap<u32, u32> = maps[0].iter().copied().collect();
        assert_eq!(as_map, reference);
    }

    #[test]
    fn grows_absorb_overfull_batches() {
        // 4 subtables × 4 buckets × 32 slots = 512 slots; 2000 distinct
        // keys force repeated doublings through the overflow drain.
        let mut t = ParTable::new(cfg(), 4).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=2000u32).map(|k| (k, k)).collect();
        let r = t.insert_batch(&kvs).unwrap();
        assert_eq!(r.inserted, 2000);
        assert!(t.grows() > 0, "2000 keys into 512 slots must grow");
        assert_eq!(t.len(), 2000);
        t.verify().unwrap();
        let got = t.find_batch(&kvs.iter().map(|&(k, _)| k).collect::<Vec<_>>());
        assert!(got.iter().all(|g| g.is_some()));
    }

    #[test]
    fn zero_key_is_rejected() {
        let mut t = ParTable::new(cfg(), 2).unwrap();
        assert!(matches!(t.insert_batch(&[(0, 1)]), Err(Error::ZeroKey)));
    }

    #[test]
    fn metrics_accumulate_and_conserve_into_attribution() {
        let mut t = ParTable::new(cfg(), 4).unwrap();
        t.set_profiling(true);
        let kvs: Vec<(u32, u32)> = (1..=600u32).map(|k| (k, k)).collect();
        t.insert_batch(&kvs).unwrap();
        t.find_batch(&[1, 2, 3, 700]);
        t.delete_batch(&[1, 2]);
        let m = t.take_metrics();
        assert_eq!(m.ops, 600 + 4 + 2);
        assert!(m.lookups >= m.ops);
        let a = t.take_attribution();
        for kind in ChargeKind::ALL {
            assert_eq!(a.total(kind), m.get(kind), "{kind:?}");
        }
    }
}
