//! Negative-lookup battery (DESIGN.md §4h): the fingerprint lane and the
//! service's cuckoo-filter miss shield, pinned from the outside.
//!
//! Three families of gates:
//!
//! 1. **Line charges** — on the multi-line `aos32` layout an all-miss find
//!    batch must cost strictly fewer read transactions with every added
//!    fingerprint bit (`fp16 < fp8 < no-fp`), while a disabled lane leaves
//!    the stock layouts' charges bit-identical to the historical runs.
//! 2. **False-negative freedom** (property) — a fingerprint gate may only
//!    ever *skip* slots whose key cannot match; under every schedule
//!    policy, through eviction chains, stash spills, rehashes and
//!    in-flight incremental migrations, a gated table must agree exactly
//!    with a reference map. Likewise the miss shield's filter must never
//!    deny a live key under any interleaving of inserts and deletes.
//! 3. **Shed semantics** — the service answers a provably-absent `Get` at
//!    submission time (no batcher enqueue, no find kernel) and routes
//!    filter false positives through the table to the correct not-found.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

use dycuckoo::{Config, DupPolicy, DyCuckoo};
use gpu_sim::{LayoutConfig, Metrics, SchedulePolicy, SimContext};
use kv_service::{KvService, MissFilter, Op, Reply, ServiceConfig};
use obs::Event;

/// Every schedule-policy flavor the exploration harness sweeps, with two
/// parameterizations of each seeded one.
const POLICIES: [SchedulePolicy; 8] = [
    SchedulePolicy::FixedOrder,
    SchedulePolicy::Reversed,
    SchedulePolicy::Rotating { stride: 1 },
    SchedulePolicy::Rotating { stride: 5 },
    SchedulePolicy::Shuffled { seed: 1 },
    SchedulePolicy::Shuffled { seed: 0xBEEF },
    SchedulePolicy::ContendedFirst { seed: 2 },
    SchedulePolicy::ContendedFirst { seed: 0x77 },
];

fn aos_config(spec: &str, schedule: SchedulePolicy) -> Config {
    Config {
        seed: 0x4E47,
        initial_buckets: 64,
        dup_policy: DupPolicy::PaperInsert,
        schedule,
        layout: LayoutConfig::parse(spec, 4, 4).expect("valid layout spec"),
        ..Config::default()
    }
}

/// Seed a table with `n` live keys and measure one all-miss find batch.
fn all_miss_reads(spec: &str, n: u32) -> u64 {
    let mut sim = SimContext::new();
    let mut table =
        DyCuckoo::new(aos_config(spec, SchedulePolicy::FixedOrder), &mut sim).expect("table");
    let kvs: Vec<(u32, u32)> = (1..=n).map(|k| (k, k ^ 0x5A5A)).collect();
    table.insert_batch(&mut sim, &kvs).expect("seed inserts");
    let absent: Vec<u32> = (n + 1..=2 * n).collect();
    sim.take_metrics();
    let got = table.find_batch(&mut sim, &absent);
    assert!(got.iter().all(Option::is_none), "{spec}: absent key found");
    sim.take_metrics().read_transactions
}

/// The headline ordering the negative sweep pins: on a probe that spans
/// two cache lines, a fingerprint word that rejects the bucket saves the
/// second line, and wider tags reject more often.
#[test]
fn all_miss_line_charges_order_fp16_below_fp8_below_bare() {
    let n = 4096;
    let bare = all_miss_reads("aos32", n);
    let fp8 = all_miss_reads("aos32+fp8", n);
    let fp16 = all_miss_reads("aos32+fp16", n);
    assert!(
        fp16 < fp8 && fp8 < bare,
        "lines-per-miss must order fp16 < fp8 < no-fp (got {fp16} / {fp8} / {bare})"
    );
}

/// A disabled lane is not a cheap lane — it is *no* lane: with
/// `fp_bits == 0` the stock layouts charge exactly what they always did,
/// on hits and misses alike. `with_fp(0)` must be a true identity.
#[test]
fn fp_off_charges_are_bit_identical_to_the_stock_layouts() {
    for spec in ["soa32", "aos32"] {
        let stock = LayoutConfig::parse(spec, 4, 4).expect("stock spec");
        assert_eq!(stock.with_fp(0), stock, "{spec}: with_fp(0) not identity");

        let run = |layout: LayoutConfig| -> (Vec<Option<u32>>, Metrics) {
            let mut sim = SimContext::new();
            let cfg = Config {
                layout,
                ..aos_config(spec, SchedulePolicy::FixedOrder)
            };
            let mut table = DyCuckoo::new(cfg, &mut sim).expect("table");
            let kvs: Vec<(u32, u32)> = (1..=2000u32).map(|k| (k, k ^ 0x5A5A)).collect();
            table.insert_batch(&mut sim, &kvs).expect("seed inserts");
            // Mixed hit/miss queries so both reply paths are charged.
            let queries: Vec<u32> = (1..=4000u32).step_by(3).collect();
            let got = table.find_batch(&mut sim, &queries);
            (got, sim.take_metrics())
        };
        let (got_a, m_a) = run(stock);
        let (got_b, m_b) = run(stock.with_fp(0));
        assert_eq!(got_a, got_b, "{spec}: results diverged");
        assert_eq!(m_a, m_b, "{spec}: charges diverged with the lane off");
    }
}

/// An operation in a random workload (mirrors `dycuckoo_invariants`).
#[derive(Debug, Clone)]
enum WorkOp {
    Insert(u32, u32),
    Delete(u32),
    Find(u32),
}

fn op_strategy() -> impl Strategy<Value = WorkOp> {
    let key = 1u32..4000;
    prop_oneof![
        4 => (key.clone(), any::<u32>()).prop_map(|(k, v)| WorkOp::Insert(k, v)),
        2 => key.clone().prop_map(WorkOp::Delete),
        2 => key.prop_map(WorkOp::Find),
    ]
}

/// Drive a gated table against a reference map, batch by batch. Every
/// live key must be found with its exact value (a fingerprint false
/// negative would surface as a lost key) and every dead key must miss.
fn check_gated_against_reference(
    ops: &[WorkOp],
    policy: SchedulePolicy,
    fp_bits: u8,
    migration_quantum: usize,
) -> Result<(), TestCaseError> {
    let mut sim = SimContext::new();
    let cfg = Config {
        // A tiny initial size forces eviction chains, stash spills and
        // structural resizes; a finite quantum keeps migrations in
        // flight across batches so finds are checked mid-migration.
        initial_buckets: 2,
        stash_capacity: 8,
        migration_quantum,
        layout: LayoutConfig::parse("aos32", 4, 4)
            .expect("aos32")
            .with_fp(fp_bits),
        schedule: policy,
        seed: 0xF1F0 ^ fp_bits as u64,
        ..Config::default()
    };
    let mut table = DyCuckoo::new(cfg, &mut sim).expect("table");
    let mut reference: HashMap<u32, u32> = HashMap::new();

    for chunk in ops.chunks(24) {
        let mut inserts: HashMap<u32, u32> = HashMap::new();
        let mut deletes: Vec<u32> = Vec::new();
        let mut finds: Vec<u32> = Vec::new();
        for op in chunk {
            match *op {
                WorkOp::Insert(k, v) => {
                    inserts.insert(k, v);
                }
                WorkOp::Delete(k) => deletes.push(k),
                WorkOp::Find(k) => finds.push(k),
            }
        }
        if !inserts.is_empty() {
            let batch: Vec<(u32, u32)> = inserts.into_iter().collect();
            table.insert_batch(&mut sim, &batch).unwrap();
            for (k, v) in batch {
                reference.insert(k, v);
            }
        }
        if !deletes.is_empty() {
            table.delete_batch(&mut sim, &deletes).unwrap();
            for k in &deletes {
                reference.remove(k);
            }
        }
        if !finds.is_empty() {
            let got = table.find_batch(&mut sim, &finds);
            for (k, g) in finds.iter().zip(got) {
                prop_assert_eq!(g, reference.get(k).copied(), "key {}", k);
            }
        }
        prop_assert_eq!(table.len(), reference.len() as u64);
    }
    // Final sweep: every live key resolves, so no fingerprint ever went
    // stale through the eviction / migration traffic above.
    let live: Vec<u32> = reference.keys().copied().collect();
    let got = table.find_batch(&mut sim, &live);
    for (k, g) in live.iter().zip(got) {
        prop_assert_eq!(g, reference.get(k).copied(), "final key {}", k);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fingerprint gates are false-negative-free under every schedule
    /// policy, including mid-eviction-chain and mid-migration states.
    #[test]
    fn gated_probes_never_lose_keys(
        ops in vec(op_strategy(), 50..250),
        policy_idx in 0usize..POLICIES.len(),
        fp_16 in any::<bool>(),
        incremental in any::<bool>(),
    ) {
        let quantum = if incremental { 2 } else { usize::MAX };
        let fp_bits = if fp_16 { 16 } else { 8 };
        check_gated_against_reference(&ops, POLICIES[policy_idx], fp_bits, quantum)?;
    }

    /// The miss shield's filter never denies a live key under any
    /// interleaving of inserts and deletes ("false" is authoritative).
    #[test]
    fn miss_filter_never_false_negative(
        ops in vec((any::<bool>(), 1u32..600), 1..400),
        fp_16 in any::<bool>(),
    ) {
        let bits = if fp_16 { 16 } else { 8 };
        let mut filter = MissFilter::new(bits, 0x5EED);
        let mut live = std::collections::BTreeSet::new();
        for (is_insert, key) in ops {
            if is_insert {
                filter.insert(key);
                live.insert(key);
            } else {
                filter.remove(key);
                live.remove(&key);
            }
            for &k in &live {
                prop_assert!(filter.may_contain(k), "live key {} denied", k);
            }
        }
        prop_assert_eq!(filter.keys(), live.len() as u64);
    }
}

/// Every schedule policy also passes a fixed deterministic gauntlet (the
/// proptest above samples; this covers all eight exhaustively).
#[test]
fn gated_probes_survive_every_policy_deterministically() {
    let ops: Vec<WorkOp> = (0..300u32)
        .map(|i| match i % 8 {
            0..=3 => WorkOp::Insert(1 + i * 7 % 900, i),
            4 | 5 => WorkOp::Find(1 + i * 13 % 900),
            _ => WorkOp::Delete(1 + i * 11 % 900),
        })
        .collect();
    for policy in POLICIES {
        for quantum in [usize::MAX, 2] {
            check_gated_against_reference(&ops, policy, 8, quantum)
                .unwrap_or_else(|e| panic!("policy {}: {e}", policy.spec()));
        }
    }
}

fn shed_service(sim: &mut SimContext, bits: u8) -> KvService {
    let cfg = ServiceConfig {
        shards: 2,
        max_batch: 16,
        max_delay_ticks: 4,
        queue_capacity: 256,
        shed_watermark: 256,
        miss_filter_bits: bits,
        seed: 0xCAFE,
        ..ServiceConfig::default()
    };
    KvService::new(cfg, sim).expect("service")
}

/// A known-absent `Get` is answered at submission time: the completion is
/// immediate, a `filter_shed` metric and a `filter_shed` flight-recorder
/// event fire, and the batcher never sees the op (no queue entry, no
/// flush, no table probe).
#[test]
fn filter_sheds_absent_get_without_batcher_enqueue() {
    let mut sim = SimContext::new();
    let mut svc = shed_service(&mut sim, 16);
    for k in 1..=200u32 {
        svc.submit(0, Op::Put(k, k + 1)).expect("put");
    }
    svc.flush_all(&mut sim).expect("drain puts");
    svc.drain_completions();

    let probes_before = svc.metrics().total().table_probes;
    obs::start(1 << 14);
    // 16-bit tags over 200 keys: pick an absent key the filter provably
    // rejects (scan for one that is shed; false positives are possible
    // but not for every candidate).
    let mut shed_key = None;
    for k in 1000..1100u32 {
        let before = svc.metrics().total().filter_shed;
        let id = svc.submit(0, Op::Get(k)).expect("get admitted");
        if svc.metrics().total().filter_shed == before + 1 {
            shed_key = Some((k, id));
            break;
        }
        // A false positive was enqueued; flush it away and keep looking.
        svc.flush_all(&mut sim).expect("drain fp");
        svc.drain_completions();
    }
    let trace = obs::stop();
    let (key, id) = shed_key.expect("no key shed out of 100 absent candidates");

    // The completion is already available — no tick, no flush.
    let done = svc.drain_completions();
    let c = done
        .iter()
        .find(|c| c.id == id)
        .expect("shed get completed immediately");
    assert_eq!(c.key, key);
    assert_eq!(c.reply, Reply::Value(None));
    assert_eq!(
        c.submitted_tick, c.completed_tick,
        "shed reply must not wait"
    );

    // The shed get never reached the kernels: the only table probes in
    // the window came from false-positive candidates we flushed above.
    assert!(
        trace.events.iter().any(|te| matches!(
            te.event,
            Event::FilterShed { key: k, .. } if k == key
        )),
        "no filter_shed event recorded for key {key}"
    );
    svc.flush_all(&mut sim).expect("final drain");
    let total = svc.metrics().total();
    assert!(total.filter_shed >= 1);
    // Flushing after the shed adds no probes: nothing was enqueued.
    let probes_if_enqueued = svc.metrics().total().table_probes;
    svc.flush_all(&mut sim).expect("idle drain");
    assert_eq!(svc.metrics().total().table_probes, probes_if_enqueued);
    assert!(svc.metrics().total().table_probes >= probes_before);
}

/// A filter false positive is not an error: the get passes through to the
/// table and returns the correct not-found, counted as `filter_false_pos`.
#[test]
fn filter_false_positive_still_answers_not_found() {
    let mut sim = SimContext::new();
    // 8-bit tags over a large live set: false positives are plentiful.
    let mut svc = shed_service(&mut sim, 8);
    let n = 3000u32;
    for k in 1..=n {
        svc.submit(0, Op::Put(k, k ^ 0x77)).expect("put");
        if k % 16 == 0 {
            svc.flush_all(&mut sim).expect("drain window");
        }
    }
    svc.flush_all(&mut sim).expect("drain puts");
    svc.drain_completions();

    for k in n + 1..=2 * n {
        svc.submit(0, Op::Get(k)).expect("get");
        if k % 64 == 0 {
            svc.flush_all(&mut sim).expect("drain window");
        }
    }
    svc.flush_all(&mut sim).expect("drain gets");
    let done = svc.drain_completions();
    assert_eq!(done.len(), n as usize);
    for c in &done {
        assert_eq!(
            c.reply,
            Reply::Value(None),
            "absent key {} must answer not-found",
            c.key
        );
    }
    let total = svc.metrics().total();
    assert!(
        total.filter_false_pos > 0,
        "8-bit tags over {n} keys produced no false positive — test is vacuous"
    );
    assert_eq!(
        total.filter_shed + total.filter_false_pos,
        n as u64,
        "every true miss is either shed or a counted false positive"
    );
    assert!(
        total.filter_shed as f64 >= 0.9 * n as f64,
        "shed {} of {n} true misses (< 90%)",
        total.filter_shed
    );
}

/// With the shield off the service's observable behaviour — including the
/// pinned idle metrics registry — is untouched.
#[test]
fn disabled_filter_leaves_metrics_registry_unchanged() {
    let mut sim = SimContext::new();
    let mut svc = shed_service(&mut sim, 0);
    svc.submit(0, Op::Put(1, 2)).expect("put");
    svc.submit(0, Op::Get(999))
        .expect("get passes to the table");
    svc.flush_all(&mut sim).expect("drain");
    let done = svc.drain_completions();
    assert!(done.iter().any(|c| c.reply == Reply::Value(None)));
    let total = svc.metrics().total();
    assert_eq!(total.filter_shed, 0);
    assert_eq!(total.filter_false_pos, 0);
    let mut reg = obs::Registry::new();
    total.register_into(&mut reg, &[]);
    assert!(
        !reg.to_text().contains("service_filter"),
        "filter metrics must not register while the shield is off"
    );
}
