//! # gpu-sim — a deterministic SIMT execution model
//!
//! This crate is the hardware substrate for the DyCuckoo reproduction. The
//! paper's kernels are written against NVIDIA's CUDA execution model: threads
//! grouped into **warps** of 32 lanes executing in lockstep, cooperating via
//! `__ballot`/`__shfl`, reading device memory in 128-byte **transactions**,
//! and resolving write conflicts with `atomicCAS`/`atomicExch`.
//!
//! Since warp-level CUDA kernels cannot be expressed portably in stable Rust
//! (and this reproduction targets machines without a GPU), we model the GPU
//! deterministically instead of emulating it cycle-accurately:
//!
//! * [`warp`] provides lane masks, `ballot`, and broadcast — the exact
//!   primitives Algorithm 1 of the paper is written in.
//! * [`scheduler`] interleaves many in-flight warps **round by round**, so
//!   that locks held by one warp are observed by every other warp in the same
//!   round: cross-warp contention genuinely occurs and is counted, exactly
//!   like concurrent blocks on a real device.
//! * [`atomic`] implements bucket locks with the paper's
//!   `atomicCAS(&lock,0,1)` / `atomicExch(&lock,0)` semantics, and groups
//!   conflicting atomics to the same address within a round so their
//!   serialization can be charged (the effect profiled in the paper's
//!   "atomic operations vs. conflicts" figure).
//! * [`engine`] provides the shared probe/storage machinery every
//!   bucketized table is built on: typed device buffers with pluggable
//!   bucket layouts (AoS/SoA, swept widths) and layout-aware transaction
//!   accounting.
//! * [`metrics`] counts what the paper's evaluation actually measures:
//!   coalesced read/write transactions, bucket lookups, evictions, lock
//!   failures, and rounds.
//! * [`cost`] converts those counts into simulated nanoseconds with a
//!   roofline model over GTX 1080 constants, yielding the Mops numbers
//!   reported by the experiment harness.
//!
//! The model is **deterministic**: the same inputs produce the same metrics
//! and the same simulated time on every run, which makes the experiment
//! harness reproducible bit-for-bit.

pub mod atomic;
pub mod cost;
pub mod device;
pub mod engine;
pub mod explore;
pub mod metrics;
pub mod scheduler;
pub mod warp;

pub use atomic::{Locks, RoundCtx};
pub use cost::CostModel;
pub use device::{Device, DeviceConfig};
pub use engine::{BucketStore, LayoutConfig, LayoutScheme, SlotStore, StripeGuard, StripedStore};
pub use explore::{shrink_ops, SchedulePolicy};
pub use metrics::{ChargeKind, Metrics};
pub use scheduler::{
    run_rounds, run_rounds_quantum, run_rounds_with, QuantumOutcome, RoundKernel, StepOutcome,
};
pub use warp::{ballot, broadcast, first_set_lane, lanes, LaneMask, WARP_SIZE};

/// A simulation context bundling the device with the metrics of the kernel
/// currently executing. Hash-table operations take `&mut SimContext` so all
/// cost accounting flows through one place.
#[derive(Debug)]
pub struct SimContext {
    /// The simulated device (configuration + memory accounting).
    pub device: Device,
    /// Running totals for the current measurement window.
    pub metrics: Metrics,
}

impl SimContext {
    /// Create a context for the default device (GTX 1080 constants).
    pub fn new() -> Self {
        Self::with_config(DeviceConfig::default())
    }

    /// Create a context for a custom device configuration.
    pub fn with_config(config: DeviceConfig) -> Self {
        Self {
            device: Device::new(config),
            metrics: Metrics::default(),
        }
    }

    /// Reset the measurement window, returning the metrics accumulated so far.
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(&mut self.metrics)
    }

    /// Simulated wall time of the metrics accumulated so far, in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        CostModel::new(self.device.config()).kernel_time_ns(&self.metrics)
    }

    /// Throughput in million operations per second for `ops` operations
    /// executed during the current measurement window.
    pub fn mops(&self, ops: u64) -> f64 {
        CostModel::new(self.device.config()).mops(ops, &self.metrics)
    }
}

impl Default for SimContext {
    fn default() -> Self {
        Self::new()
    }
}
