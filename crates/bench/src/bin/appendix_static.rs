//! **Appendix figure** — static θ sweep including the `Linear` baseline:
//! insert and find Mops at θ ∈ {70% … 95%} on RAND.
//!
//! Paper shape to reproduce: insert throughput drops for every scheme at
//! high θ; find is flat for the cuckoo schemes (fixed probe count) but
//! *degrades* for Linear, whose probe sequences lengthen with θ; DyCuckoo
//! is second-best behind MegaKV overall.

use bench::driver::{build_static, run_static, Scheme};
use bench::report::{fmt_mops, Table};
use bench::{scale, seed};
use gpu_sim::SimContext;
use workloads::dataset_by_name;

fn main() {
    let scale = scale();
    let seed = seed();
    let ds = dataset_by_name("RAND")
        .unwrap()
        .scaled(scale)
        .generate(seed);
    let n_queries = (1_000_000.0 * scale).round() as usize;
    println!(
        "Appendix: static θ sweep incl. Linear (RAND, {} pairs, scale={scale})",
        ds.len()
    );

    let schemes = [
        Scheme::Cudpp,
        Scheme::Linear,
        Scheme::MegaKv,
        Scheme::Slab,
        Scheme::DyCuckoo,
    ];
    let mut insert_tbl = Table::new(&["theta", "CUDPP", "Linear", "MegaKV", "Slab", "DyCuckoo"]);
    let mut find_tbl = Table::new(&["theta", "CUDPP", "Linear", "MegaKV", "Slab", "DyCuckoo"]);
    for theta in [0.70, 0.75, 0.80, 0.85, 0.90] {
        let mut ins = vec![format!("{:.0}%", theta * 100.0)];
        let mut fnd = vec![format!("{:.0}%", theta * 100.0)];
        for scheme in schemes {
            let mut sim = SimContext::new();
            let mut table = build_static(scheme, ds.unique_keys, theta, seed, &mut sim);
            let r = run_static(table.as_mut(), &mut sim, &ds, n_queries, seed ^ 0xAA);
            ins.push(fmt_mops(r.insert.mops));
            fnd.push(fmt_mops(r.find.mops));
        }
        insert_tbl.row(ins);
        find_tbl.row(fnd);
    }
    insert_tbl.print("Appendix (left): INSERT Mops vs θ");
    find_tbl.print("Appendix (right): FIND Mops vs θ");
}
