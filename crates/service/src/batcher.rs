//! Request coalescing: turning a FIFO window of single-key requests into
//! the minimal set of batched table kernels.
//!
//! DyCuckoo's kernels are batched per operation type (the paper's
//! protocol), so a flush window is compiled into at most three kernels —
//! one find, one insert, one delete — while preserving **per-key arrival
//! order** semantics:
//!
//! * a Get *before* any write to its key in the window reads the table
//!   (the find kernel runs before the write kernels);
//! * a Get *after* a write in the window is answered locally from the
//!   pending write — read-your-writes without a table probe;
//! * several Gets of the same (unwritten) key share one probe;
//! * several writes to the same key collapse to the key's **last** write —
//!   only the final state touches the table.
//!
//! Everything is first-touch ordered, so plans are deterministic.

use std::collections::HashMap;

use crate::request::{Op, Pending};

/// What a pending write window holds for one key.
#[derive(Debug, Clone, Copy)]
enum WriteState {
    Put(u32),
    Delete,
}

/// Where one request's reply comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlannedReply {
    /// Get answered by the find kernel: index into [`FlushPlan::probes`].
    FromTable(usize),
    /// Get answered locally from a preceding write in the window.
    Local(Option<u32>),
    /// Put acknowledgement.
    Stored,
    /// Delete acknowledgement.
    Deleted,
}

/// The compiled form of one flush window.
#[derive(Debug, Default)]
pub(crate) struct FlushPlan {
    /// Unique keys the find kernel must probe (first-touch order).
    pub probes: Vec<u32>,
    /// Final puts (first-write-touch order).
    pub puts: Vec<(u32, u32)>,
    /// Final deletes (first-write-touch order).
    pub deletes: Vec<u32>,
    /// Reply source per request, parallel to the input window.
    pub replies: Vec<PlannedReply>,
    /// Gets answered locally from the window (no probe issued).
    pub coalesced_local: u64,
    /// Duplicate Gets that shared an already-planned probe.
    pub dedup_saved: u64,
    /// Writes superseded by a later write to the same key in the window.
    pub writes_coalesced: u64,
}

/// Compile a flush window into kernel batches plus per-request reply
/// routing.
pub(crate) fn plan_flush(window: &[Pending]) -> FlushPlan {
    let mut plan = FlushPlan {
        replies: Vec::with_capacity(window.len()),
        ..FlushPlan::default()
    };
    // Key → index into plan.probes.
    let mut probe_of: HashMap<u32, usize> = HashMap::new();
    // Key → latest pending write in the window.
    let mut write_state: HashMap<u32, WriteState> = HashMap::new();
    // First-write-touch order of keys in write_state (determinism).
    let mut write_order: Vec<u32> = Vec::new();
    let mut raw_writes: u64 = 0;

    for req in window {
        match req.op {
            Op::Get(k) => match write_state.get(&k) {
                Some(WriteState::Put(v)) => {
                    plan.coalesced_local += 1;
                    plan.replies.push(PlannedReply::Local(Some(*v)));
                }
                Some(WriteState::Delete) => {
                    plan.coalesced_local += 1;
                    plan.replies.push(PlannedReply::Local(None));
                }
                None => {
                    let next = plan.probes.len();
                    let idx = *probe_of.entry(k).or_insert(next);
                    if idx == next {
                        plan.probes.push(k);
                    } else {
                        plan.dedup_saved += 1;
                    }
                    plan.replies.push(PlannedReply::FromTable(idx));
                }
            },
            Op::Put(k, v) => {
                raw_writes += 1;
                if write_state.insert(k, WriteState::Put(v)).is_none() {
                    write_order.push(k);
                }
                plan.replies.push(PlannedReply::Stored);
            }
            Op::Delete(k) => {
                raw_writes += 1;
                if write_state.insert(k, WriteState::Delete).is_none() {
                    write_order.push(k);
                }
                plan.replies.push(PlannedReply::Deleted);
            }
        }
    }

    for k in write_order {
        match write_state[&k] {
            WriteState::Put(v) => plan.puts.push((k, v)),
            WriteState::Delete => plan.deletes.push(k),
        }
    }
    plan.writes_coalesced = raw_writes - (plan.puts.len() + plan.deletes.len()) as u64;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pend(ops: &[Op]) -> Vec<Pending> {
        ops.iter()
            .enumerate()
            .map(|(i, &op)| Pending {
                id: i as u64,
                client: 0,
                op,
                submitted_tick: 0,
            })
            .collect()
    }

    #[test]
    fn get_before_write_probes_table_get_after_is_local() {
        let w = pend(&[Op::Get(5), Op::Put(5, 9), Op::Get(5)]);
        let plan = plan_flush(&w);
        assert_eq!(plan.probes, vec![5]);
        assert_eq!(plan.puts, vec![(5, 9)]);
        assert_eq!(
            plan.replies,
            vec![
                PlannedReply::FromTable(0),
                PlannedReply::Stored,
                PlannedReply::Local(Some(9)),
            ]
        );
        assert_eq!(plan.coalesced_local, 1);
    }

    #[test]
    fn duplicate_gets_share_one_probe() {
        let w = pend(&[Op::Get(1), Op::Get(2), Op::Get(1), Op::Get(1)]);
        let plan = plan_flush(&w);
        assert_eq!(plan.probes, vec![1, 2]);
        assert_eq!(plan.dedup_saved, 2);
        assert_eq!(
            plan.replies,
            vec![
                PlannedReply::FromTable(0),
                PlannedReply::FromTable(1),
                PlannedReply::FromTable(0),
                PlannedReply::FromTable(0),
            ]
        );
    }

    #[test]
    fn last_write_wins_and_coalesces() {
        let w = pend(&[
            Op::Put(7, 1),
            Op::Put(7, 2),
            Op::Delete(8),
            Op::Put(8, 5),
            Op::Put(9, 3),
            Op::Delete(9),
        ]);
        let plan = plan_flush(&w);
        // Final states: 7 → put 2, 8 → put 5, 9 → delete.
        assert_eq!(plan.puts, vec![(7, 2), (8, 5)]);
        assert_eq!(plan.deletes, vec![9]);
        assert_eq!(plan.writes_coalesced, 3);
        assert!(plan.probes.is_empty());
    }

    #[test]
    fn get_after_delete_answers_miss_locally() {
        let w = pend(&[Op::Put(3, 1), Op::Delete(3), Op::Get(3)]);
        let plan = plan_flush(&w);
        assert_eq!(plan.replies[2], PlannedReply::Local(None));
        assert_eq!(plan.puts, vec![]);
        assert_eq!(plan.deletes, vec![3]);
    }

    #[test]
    fn plans_are_first_touch_ordered() {
        let w = pend(&[
            Op::Put(30, 1),
            Op::Put(10, 1),
            Op::Put(20, 1),
            Op::Put(10, 2),
            Op::Get(99),
            Op::Get(50),
        ]);
        let plan = plan_flush(&w);
        assert_eq!(plan.puts, vec![(30, 1), (10, 2), (20, 1)]);
        assert_eq!(plan.probes, vec![99, 50]);
    }

    #[test]
    fn empty_window_is_empty_plan() {
        let plan = plan_flush(&[]);
        assert!(plan.probes.is_empty() && plan.puts.is_empty() && plan.deletes.is_empty());
        assert!(plan.replies.is_empty());
    }
}
