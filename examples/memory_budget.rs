//! Memory coexistence — the paper's core motivation: a GPU hosts several
//! data structures at once, so a hash table that hoards memory starves its
//! neighbours and forces PCIe round trips.
//!
//! This example runs the same shrinking workload against DyCuckoo and the
//! MegaKV-style full-rehash baseline on identical simulated devices, then
//! compares steady-state and *peak* footprints (full rehashing transiently
//! holds old + new tables).
//!
//! Run with: `cargo run --release --example memory_budget`

use baselines::{GpuHashTable, MegaKv, ResizeBounds};
use dycuckoo::{Config, DyCuckoo};
use gpu_sim::SimContext;

const KEYS: u32 = 200_000;

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kvs: Vec<(u32, u32)> = (1..=KEYS).map(|k| (k, k)).collect();
    // Delete 85% of the population in waves, as a session store would
    // after a traffic spike.
    let waves: Vec<Vec<u32>> = (0..17)
        .map(|w| ((w * 10_000 + 1)..=(w + 1) * 10_000).collect())
        .collect();

    // --- DyCuckoo ---
    let mut sim = SimContext::new();
    let mut dy = DyCuckoo::new(Config::default(), &mut sim)?;
    dy.insert_batch(&mut sim, &kvs)?;
    let dy_loaded = dy.device_bytes();
    for wave in &waves {
        dy.delete_batch(&mut sim, wave)?;
    }
    let dy_after = dy.device_bytes();
    let dy_peak = sim.device.peak_bytes();

    // --- MegaKV with the same filled-factor bounds ---
    let mut sim = SimContext::new();
    let mut mk = MegaKv::new(
        64,
        Some(ResizeBounds {
            alpha: 0.30,
            beta: 0.85,
        }),
        7,
        &mut sim,
    )?;
    mk.insert_batch(&mut sim, &kvs)?;
    let mk_loaded = mk.device_bytes();
    for wave in &waves {
        mk.delete_batch(&mut sim, wave)?;
    }
    let mk_after = mk.device_bytes();
    let mk_peak = sim.device.peak_bytes();

    println!("workload: insert {KEYS} keys, then delete 85% in waves\n");
    println!("                     loaded    after-shrink   PEAK (during resizes)");
    println!(
        "DyCuckoo          {:>7.2} MiB   {:>7.2} MiB   {:>7.2} MiB",
        mib(dy_loaded),
        mib(dy_after),
        mib(dy_peak)
    );
    println!(
        "MegaKV (rehash)   {:>7.2} MiB   {:>7.2} MiB   {:>7.2} MiB",
        mib(mk_loaded),
        mib(mk_after),
        mib(mk_peak)
    );
    println!(
        "\npeak ratio MegaKV / DyCuckoo = {:.2}x",
        mk_peak as f64 / dy_peak as f64
    );
    println!(
        "DyCuckoo resizes one subtable at a time, so its peak is its steady state\n\
         plus one subtable; full rehashing must hold both generations at once."
    );
    assert!(mk_peak > dy_peak, "full rehash should peak higher");
    Ok(())
}
