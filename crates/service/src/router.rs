//! Key-space partitioning across shards.
//!
//! Each shard owns an independent [`dycuckoo::DyCuckoo`] instance, so a
//! resize triggered by one shard's load never stalls the others. The router
//! must therefore spread keys evenly AND stay independent of the bits the
//! tables hash on: the subtable bucket index is `(a·fmix32(k) + b) mod p
//! mod n` under table-seeded universal functions, while the shard index is
//! the **top** `log2(N)` bits of a splitmix64 mix under a separate
//! router seed. The families share no parameters, so conditioning on a
//! shard does not constrain any subtable's bucket distribution (verified
//! empirically by `tests/kv_service.rs`).

use dycuckoo::hashfn::splitmix64;

/// Routes keys to one of `N` shards (`N` a power of two).
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    shards: usize,
    bits: u32,
    seed: u64,
}

/// Salt separating the router's hash stream from every table seed
/// derivation in this workspace.
const ROUTER_SALT: u64 = 0x5EAF_00D5_0C1A_11E5;

impl ShardRouter {
    /// Build a router over `shards` shards (must be a power of two ≥ 1).
    pub fn new(shards: usize, seed: u64) -> Result<Self, String> {
        if shards == 0 || !shards.is_power_of_two() {
            return Err(format!(
                "shard count must be a power of two ≥ 1, got {shards}"
            ));
        }
        if shards > 1 << 16 {
            return Err(format!(
                "shard count {shards} is unreasonably large (max 65536)"
            ));
        }
        Ok(Self {
            shards,
            bits: shards.trailing_zeros(),
            seed: splitmix64(seed ^ ROUTER_SALT),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the top `log2(N)` bits of the router hash.
    #[inline]
    pub fn shard_of(&self, key: u32) -> usize {
        if self.shards == 1 {
            return 0;
        }
        (splitmix64(self.seed ^ key as u64) >> (64 - self.bits)) as usize
    }

    /// The shard owning byte-string `key` (unsized tier): FNV-1a over the
    /// bytes, folded into the same router-seeded splitmix stream as
    /// [`ShardRouter::shard_of`] — so byte routing inherits the same
    /// independence from every table's hash parameters.
    pub fn shard_of_bytes(&self, key: &[u8]) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (splitmix64(self.seed ^ h) >> (64 - self.bits)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        assert!(ShardRouter::new(0, 1).is_err());
        assert!(ShardRouter::new(3, 1).is_err());
        assert!(ShardRouter::new(6, 1).is_err());
        assert!(ShardRouter::new(4, 1).is_ok());
        assert!(ShardRouter::new(1, 1).is_ok());
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = ShardRouter::new(8, 42).unwrap();
        for k in 1..10_000u32 {
            let s = r.shard_of(k);
            assert!(s < 8);
            assert_eq!(s, r.shard_of(k));
        }
    }

    #[test]
    fn shards_receive_balanced_load() {
        let r = ShardRouter::new(16, 7).unwrap();
        let mut counts = [0u32; 16];
        let n = 160_000u32;
        for k in 1..=n {
            counts[r.shard_of(k)] += 1;
        }
        let expect = n / 16;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 9 / 10 && c < expect * 11 / 10,
                "shard {i}: {c} keys vs expected {expect}"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_partitions() {
        let a = ShardRouter::new(4, 1).unwrap();
        let b = ShardRouter::new(4, 2).unwrap();
        assert!((1..1000u32).any(|k| a.shard_of(k) != b.shard_of(k)));
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1, 9).unwrap();
        assert!((1..100u32).all(|k| r.shard_of(k) == 0));
        assert_eq!(r.shard_of_bytes(b"anything"), 0);
    }

    #[test]
    fn byte_routing_is_deterministic_and_balanced() {
        let r = ShardRouter::new(8, 42).unwrap();
        let mut counts = [0u32; 8];
        let n = 80_000u32;
        for k in 0..n {
            let key = format!("key-{k:08x}");
            let s = r.shard_of_bytes(key.as_bytes());
            assert!(s < 8);
            assert_eq!(s, r.shard_of_bytes(key.as_bytes()));
            counts[s] += 1;
        }
        let expect = n / 8;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 9 / 10 && c < expect * 11 / 10,
                "shard {i}: {c} keys vs expected {expect}"
            );
        }
    }
}
