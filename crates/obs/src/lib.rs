//! # obs — flight recorder + unified telemetry registry
//!
//! Observability layer for the DyCuckoo reproduction stack, built on one
//! property: the whole stack is deterministic, so traces and metric
//! snapshots are exact-match artifacts rather than statistical ones.
//!
//! Three pieces:
//!
//! * **Flight recorder** ([`start`]/[`stop`]/[`emit`]/[`span_begin`]/
//!   [`span_end`]): a thread-local bounded ring of structured [`Event`]s
//!   stamped with the simulated clock, cumulative scheduler rounds, and a
//!   causal span id. Off by default; instrumentation sites guard on
//!   [`is_enabled`], and disabling the `recorder` cargo feature compiles
//!   every entry point to a no-op.
//! * **Registry** ([`Registry`]): named, labeled counters/gauges with one
//!   deterministic snapshot format (`to_text`/`to_csv`). The hot-path
//!   metric structs (`gpu_sim::Metrics`, `kv_service::ShardMetrics`)
//!   bridge into it via their `register_into` methods.
//! * **Exporters** ([`export::chrome_trace`], [`export::jsonl`]): render a
//!   recorded event stream for `chrome://tracing`/Perfetto or line-oriented
//!   tooling.

//! * **Attribution** ([`attr`]): a scoped domain stack charging the same
//!   counter increments `gpu_sim::Metrics` performs to a deterministic
//!   attribution tree (text / CSV / folded-stack exports), with a
//!   conservation law — Σ attributed == totals — asserted in tests.
//!   Always compiled (independent of the `recorder` feature); off by
//!   default and free when off.

pub mod attr;
pub mod event;
pub mod export;
pub mod registry;

pub use event::{Event, OpKind, OpOutcome, TraceEvent};
pub use registry::{HistStats, Registry, Value};

/// Default flight-recorder ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A drained recording: the surviving events plus how many older events
/// the ring dropped to stay bounded.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in record order (oldest surviving first).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the full ring before [`stop`] was called.
    pub dropped: u64,
}

#[cfg(feature = "recorder")]
mod recorder;
#[cfg(feature = "recorder")]
pub use recorder::{emit, is_enabled, set_clock, set_rounds, span_begin, span_end, start, stop};

/// No-op recorder entry points, compiled when the `recorder` feature is
/// off. `is_enabled` is `const false`, so guarded instrumentation sites
/// fold away entirely.
#[cfg(not(feature = "recorder"))]
mod noop {
    use crate::{Event, Trace};

    /// Always `false`: the recorder is compiled out.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    /// No-op: the recorder is compiled out.
    #[inline(always)]
    pub fn start(_capacity: usize) {}

    /// No-op: always returns an empty [`Trace`].
    #[inline(always)]
    pub fn stop() -> Trace {
        Trace::default()
    }

    /// No-op: the recorder is compiled out.
    #[inline(always)]
    pub fn set_clock(_clock: u64) {}

    /// No-op: the recorder is compiled out.
    #[inline(always)]
    pub fn set_rounds(_rounds: u64) {}

    /// No-op: the recorder is compiled out.
    #[inline(always)]
    pub fn emit(_event: Event) {}

    /// No-op: always returns span id 0.
    #[inline(always)]
    pub fn span_begin(_event: Event) -> u32 {
        0
    }

    /// No-op: the recorder is compiled out.
    #[inline(always)]
    pub fn span_end(_event: Event) {}
}
#[cfg(not(feature = "recorder"))]
pub use noop::{emit, is_enabled, set_clock, set_rounds, span_begin, span_end, start, stop};
