//! Tier-1 gates for the observability layer (`crates/obs`).
//!
//! The flight recorder must be a pure observer: arming it may not change
//! a single counter, digest, or rendered metric of any execution
//! (zero-drift), and what it records must agree exactly with the metrics
//! the simulator already keeps (the eviction-chain accounting test).

use bench::fuzz::{gen_ops, run_case, Case, Target};
use dycuckoo::{Config, DyCuckoo};
use gpu_sim::{LayoutConfig, SchedulePolicy, SimContext};
use kv_service::{KvService, Op, ServiceConfig};
use obs::{Event, OpKind};

fn fuzz_case(target: Target, seed: u64) -> Case {
    Case {
        target,
        policy: SchedulePolicy::from_seed(seed),
        workload_seed: seed,
        inject_lock_elision: false,
        layout: LayoutConfig::default(),
        migration_quantum: usize::MAX,
        tier: kv_service::Tier::Fixed,
        key_dist: workloads::LengthDist::Mixed,
        fingerprint: 0,
        miss_filter: false,
        host_par_threads: 0,
        ops: gen_ops(seed, 96),
    }
}

/// Recording on and recording off must produce bit-identical executions:
/// the digest folds the schedule-sensitive metrics, so any counter the
/// recorder perturbed would change it.
#[test]
fn recording_causes_zero_metric_drift() {
    for target in [Target::DyCuckoo, Target::KvService] {
        for seed in [1u64, 5] {
            let case = fuzz_case(target, seed);
            assert!(!obs::is_enabled());
            let off = run_case(&case).expect("oracle passes with recording off");
            obs::start(1 << 18);
            let on = run_case(&case).expect("oracle passes with recording on");
            let trace = obs::stop();
            assert_eq!(
                off,
                on,
                "recording changed the execution digest for {} seed {seed}",
                case.target.name()
            );
            assert!(
                !trace.events.is_empty(),
                "recording was armed but captured nothing for {}",
                case.target.name()
            );
            assert_eq!(trace.dropped, 0, "ring wrapped during a tiny case");
        }
    }
}

/// The recorded eviction chains must agree exactly with the metrics the
/// simulator keeps: per insert batch, the number of `EvictStep` events and
/// the sum of retired `evict_depth`s both equal the `Metrics::evictions`
/// delta — across eight different schedule policies, with the table forced
/// through heavy eviction/resize traffic from a tiny initial size.
#[test]
fn evict_chain_depth_matches_metrics_across_schedules() {
    for seed in 0..8u64 {
        let schedule = SchedulePolicy::from_seed(seed);
        let mut sim = SimContext::new();
        let mut table = DyCuckoo::new(
            Config {
                initial_buckets: 2,
                seed: 0xDEC0 + seed,
                schedule,
                ..Config::default()
            },
            &mut sim,
        )
        .expect("table");
        let keys: Vec<u32> = (1..=1200u32).collect();
        for chunk in keys.chunks(100) {
            let kvs: Vec<(u32, u32)> = chunk.iter().map(|&k| (k, k ^ 0xABCD)).collect();
            let before = sim.metrics.evictions;
            obs::start(1 << 16);
            table.insert_batch(&mut sim, &kvs).expect("insert");
            let trace = obs::stop();
            let delta = sim.metrics.evictions - before;
            assert_eq!(trace.dropped, 0, "ring wrapped; the counts below would lie");
            let steps = trace
                .events
                .iter()
                .filter(|te| matches!(te.event, Event::EvictStep { .. }))
                .count() as u64;
            let retired_depth: u64 = trace
                .events
                .iter()
                .filter_map(|te| match te.event {
                    Event::OpRetired {
                        kind: OpKind::Insert,
                        evict_depth,
                        ..
                    } => Some(evict_depth as u64),
                    _ => None,
                })
                .sum();
            assert_eq!(
                steps,
                delta,
                "policy {}: EvictStep events disagree with Metrics::evictions",
                schedule.spec()
            );
            assert_eq!(
                retired_depth,
                delta,
                "policy {}: retired chain depths disagree with Metrics::evictions",
                schedule.spec()
            );
        }
        assert_eq!(table.len(), 1200);
    }
}

fn service_csv(record: bool) -> String {
    let mut sim = SimContext::new();
    let cfg = ServiceConfig {
        shards: 2,
        table: Config {
            initial_buckets: 4,
            seed: 0x5EED,
            ..Config::default()
        },
        max_batch: 8,
        max_delay_ticks: 2,
        queue_capacity: 64,
        shed_watermark: 48,
        seed: 0xCAFE,
        ..ServiceConfig::default()
    };
    let mut svc = KvService::new(cfg, &mut sim).expect("service");
    if record {
        obs::start(1 << 16);
    }
    for i in 0..400u32 {
        let op = match i % 3 {
            0 => Op::Put(1 + i % 97, i + 1),
            1 => Op::Get(1 + i % 97),
            _ => Op::Delete(1 + i % 191),
        };
        // Admission may shed under pressure; both runs see identical refusals.
        let _ = svc.submit(i % 5, op);
        if i % 7 == 6 {
            svc.tick(&mut sim).expect("tick");
        }
    }
    svc.flush_all(&mut sim).expect("drain");
    let csv = svc.snapshot().to_csv();
    if record {
        let trace = obs::stop();
        assert!(!trace.events.is_empty(), "service run recorded nothing");
        assert!(
            trace
                .events
                .iter()
                .any(|te| matches!(te.event, Event::BatchFlush { .. })),
            "no flush spans recorded"
        );
    }
    csv
}

/// The service's rendered metrics CSV — the artifact `service_load` pins in
/// CI — must be byte-identical with the recorder armed and disarmed.
#[test]
fn service_metrics_csv_identical_with_recording_on_and_off() {
    let off = service_csv(false);
    let on = service_csv(true);
    assert_eq!(off, on);
}

/// Structural sanity of a real recorded stream: every retired op is
/// attributed to a kernel-launch span whose begin/end events bracket it,
/// and the Chrome export of that stream is balanced.
#[test]
fn spans_bracket_retires_and_chrome_export_balances() {
    let case = fuzz_case(Target::KvService, 3);
    obs::start(1 << 18);
    run_case(&case).expect("oracle passes");
    let trace = obs::stop();

    let mut begins = 0usize;
    let mut ends = 0usize;
    for te in &trace.events {
        if te.event.opens_span() {
            begins += 1;
        }
        if te.event.closes_span() {
            ends += 1;
        }
        if let Event::OpRetired { .. } = te.event {
            let opener = trace
                .events
                .iter()
                .find(|o| o.span == te.span && o.event.opens_span())
                .unwrap_or_else(|| panic!("retire in span {} has no opener", te.span));
            assert!(
                matches!(opener.event, Event::LaunchBegin { .. }),
                "retire attributed to a non-launch span"
            );
            assert!(opener.seq < te.seq, "opener must precede the retire");
        }
    }
    assert_eq!(begins, ends, "span begins and ends must pair off");

    let json = obs::export::chrome_trace(&trace.events);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with('}'));
    let count = |pat: &str| json.matches(pat).count();
    assert_eq!(
        count("\"ph\":\"B\""),
        count("\"ph\":\"E\""),
        "chrome B/E phases must balance"
    );
    assert!(count("\"ph\":\"B\"") >= begins, "every span begin exports");
}

/// One registry unifies both metric families: `gpu_sim::Metrics` and
/// `kv_service::ShardMetrics` land in a single snapshot with one format.
#[test]
fn registry_unifies_sim_and_service_metrics() {
    let case = fuzz_case(Target::DyCuckoo, 2);
    let mut sim = SimContext::new();
    {
        // Any real execution to fill the counters.
        let mut table = DyCuckoo::new(
            Config {
                initial_buckets: 4,
                seed: 7,
                ..Config::default()
            },
            &mut sim,
        )
        .expect("table");
        let kvs: Vec<(u32, u32)> = (1..=300u32).map(|k| (k, k)).collect();
        table.insert_batch(&mut sim, &kvs).expect("insert");
        drop(case);
    }
    let mut reg = obs::Registry::new();
    sim.metrics.register_into(&mut reg, &[("layer", "sim")]);
    let mut shard = kv_service::ShardMetrics {
        submitted: 10,
        completed: 9,
        ..Default::default()
    };
    shard.latency.record(4);
    shard.register_into(&mut reg, &[("layer", "service")]);

    assert_eq!(reg.get_counter("sim_ops", &[("layer", "sim")]), Some(300));
    assert_eq!(
        reg.get_counter("service_submitted", &[("layer", "service")]),
        Some(10)
    );
    let text = reg.to_text();
    assert!(text.contains("sim_evictions{layer=sim}"));
    assert!(text.contains("service_latency_ticks_p50{layer=service}"));
    // One deterministic rendering: text and CSV agree on the entry count.
    let csv = reg.to_csv();
    assert_eq!(text.lines().count(), csv.lines().count() - 1); // CSV has a header
}
