//! **Figure 7** — "Throughput of subtable resize": one subtable upsize
//! (from θ = β = 85%) and one downsize (from θ = α = 30%), comparing
//! DyCuckoo's resize kernels against the naive strategy of rehashing the
//! subtable's entries through the insert kernel (Algorithm 1).
//!
//! Paper shape to reproduce: the conflict-free resize wins both directions;
//! naive rehashing is *severely* limited for upsizing (the remaining
//! subtables are nearly full, so reinserts evict constantly) and less so
//! for downsizing (tables nearly empty).

use bench::measure;
use bench::report::{fmt_mops, Table};
use bench::{scale, seed};
use dycuckoo::{Config, DupPolicy, DyCuckoo, ResizeOp};
use gpu_sim::SimContext;
use workloads::{paper_datasets, Dataset};

fn build_at_fill(ds: &Dataset, fill: f64, seed: u64, sim: &mut SimContext) -> DyCuckoo {
    let cfg = Config {
        alpha: 0.0,
        beta: 1.0,
        seed,
        dup_policy: DupPolicy::PaperInsert,
        ..Config::default()
    };
    let mut t = DyCuckoo::with_capacity(cfg, ds.unique_keys, fill, sim).unwrap();
    t.insert_batch(sim, &ds.pairs).unwrap();
    t
}

/// Measure Mops of moving KVs for one resize of subtable 0.
fn run_one(ds: &Dataset, fill: f64, grow: bool, naive: bool, seed: u64) -> f64 {
    let mut sim = SimContext::new();
    let mut table = build_at_fill(ds, fill, seed, &mut sim);
    let (moved, m) = measure(&mut sim, |sim| {
        if naive {
            table.rehash_subtable_naive(sim, 0, grow).unwrap()
        } else {
            let op = if grow {
                ResizeOp::Upsize(0)
            } else {
                ResizeOp::Downsize(0)
            };
            table.force_resize(sim, op).unwrap().moved
        }
    });
    gpu_sim::CostModel::new(sim.device.config()).mops(moved, &m.metrics)
}

fn main() {
    let scale = scale();
    let seed = seed();
    println!("Figure 7: subtable resize throughput (Mops of KVs moved), scale={scale}");

    let mut up = Table::new(&["dataset", "DyCuckoo resize", "rehash (naive)"]);
    let mut down = Table::new(&["dataset", "DyCuckoo resize", "rehash (naive)"]);
    for spec in paper_datasets() {
        let ds = spec.scaled(scale).generate(seed);
        up.row(vec![
            spec.name.to_string(),
            fmt_mops(run_one(&ds, 0.85, true, false, seed)),
            fmt_mops(run_one(&ds, 0.85, true, true, seed)),
        ]);
        down.row(vec![
            spec.name.to_string(),
            fmt_mops(run_one(&ds, 0.30, false, false, seed)),
            fmt_mops(run_one(&ds, 0.30, false, true, seed)),
        ]);
    }
    up.print("Figure 7 (left): UPSIZE one subtable at θ=85%");
    down.print("Figure 7 (right): DOWNSIZE one subtable at θ=30%");
}
