//! MegaKV (Zhang et al., VLDB 2015), as characterized by the paper:
//! a warp-centric cuckoo hash with **two** hash functions and one bucket
//! per hash value.
//!
//! Layout: like the paper's port of MegaKV, buckets hold 32 keys in one
//! 128-byte line with values in a separate array — the shared engine's
//! default [`LayoutConfig`], and the subtables are plain
//! [`gpu_sim::BucketStore`]s, so the scheme can also be charged under any
//! swept layout. MegaKV's find is the fastest of all schemes for an
//! emergent reason: insertion tries table 0 first and only spills to
//! table 1 on a full bucket, so most keys are found on the *first* probe —
//! whereas DyCuckoo's balanced two-layer distribution spreads keys 50/50
//! over the pair and averages closer to 1.5 probes.
//!
//! Behavioural differences from DyCuckoo that the experiments exercise:
//!
//! * No voter coordination: a warp whose lock acquisition fails **spins**
//!   on the same bucket, paying the atomic-conflict cost every round.
//! * Static design: resizing doubles/halves the *whole* structure and
//!   rehashes every KV, with old and new tables coexisting during the
//!   rehash (the memory spike visible in the filled-factor tracking
//!   figure).

use gpu_sim::ChargeKind;
use gpu_sim::{
    run_rounds_with, BucketStore, LayoutConfig, Metrics, RoundCtx, RoundKernel, SchedulePolicy,
    SimContext, StepOutcome, WARP_SIZE,
};

use dycuckoo::hashfn::{splitmix64, UniversalHash};

use crate::api::{GpuHashTable, Result, TableError};

/// Key slots per bucket: 32 four-byte keys fill one 128-byte line (values
/// live in a separate array, as in DyCuckoo's layout).
pub const MK_BUCKET_SLOTS: usize = 32;

const EMPTY_KEY: u32 = 0;

/// Resize bounds for the dynamic experiments; `None` makes the table static
/// (it still doubles on insertion failure, as the paper's protocol
/// prescribes: "if an insertion failure is found, we trigger its resizing
/// strategy").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResizeBounds {
    /// Lower filled-factor bound α.
    pub alpha: f64,
    /// Upper filled-factor bound β.
    pub beta: f64,
}

/// One of MegaKV's two subtables: an engine bucket store over 32-bit words.
type MkTable = BucketStore<u32, u32>;

/// The MegaKV baseline.
pub struct MegaKv {
    tables: Vec<MkTable>,
    hashes: Vec<UniversalHash>,
    layout: LayoutConfig,
    bounds: Option<ResizeBounds>,
    eviction_limit: u32,
    seed: u64,
    schedule: SchedulePolicy,
}

#[derive(Debug, Clone, Copy)]
struct MkOp {
    key: u32,
    val: u32,
    target: usize,
    evictions: u32,
    /// Whether this op carries a KV kicked out of the table by an eviction
    /// (directly, or via the failed-op retry path). An in-flight KV is by
    /// construction *older* than any resident copy of its key — that copy
    /// was written after the kick — so re-landing it when the key is
    /// resident must drop it rather than resurrect a stale duplicate.
    in_flight: bool,
}

struct MkWarp {
    ops: Vec<MkOp>,
    cur: usize,
}

#[derive(Default)]
struct MkOutcome {
    inserted: u64,
    updated: u64,
    failed: Vec<MkOp>,
}

struct MkInsertKernel<'a> {
    tables: &'a mut [MkTable],
    hashes: &'a [UniversalHash],
    layout: LayoutConfig,
    eviction_limit: u32,
    seed: u64,
    out: MkOutcome,
}

impl RoundKernel<MkWarp> for MkInsertKernel<'_> {
    fn step(&mut self, warp: &mut MkWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let Some(op) = warp.ops.get(warp.cur).copied() else {
            return StepOutcome::Done;
        };
        let t = op.target;
        let b = self.hashes[t].bucket(op.key, self.tables[t].n_buckets());
        // No voter: spin on the same bucket until the lock is acquired.
        if !ctx.atomic_cas_lock(&mut self.tables[t].locks, t as u32, b) {
            return StepOutcome::Pending;
        }
        self.layout.charge_probe(ctx);
        let other = 1 - t;
        let ob = self.hashes[other].bucket(op.key, self.tables[other].n_buckets());
        if let Some(slot) = self.tables[t].find_slot(b, op.key) {
            if op.in_flight {
                // The resident copy was written after this KV was kicked:
                // it is newer. Dropping the in-flight copy here (instead of
                // overwriting) prevents the schedule-dependent stale-value
                // resurrection the exploration harness found.
                warp.cur += 1;
            } else {
                self.tables[t].update_val(b, slot, op.val);
                self.layout.charge_value_write(ctx);
                self.out.updated += 1;
                warp.cur += 1;
            }
        } else {
            // Alternate-bucket duplicate probe: without it, a key resident
            // in the other table gets a second, shadowing copy here.
            self.layout.charge_probe(ctx);
            if self.tables[other].find_slot(ob, op.key).is_some() {
                if op.in_flight {
                    // Same staleness argument as above.
                    warp.cur += 1;
                } else {
                    // The upsert must land on the resident copy — redirect
                    // and take that bucket's lock on the next step.
                    warp.ops[warp.cur].target = other;
                }
            } else if let Some(slot) = self.tables[t].find_empty(b) {
                self.tables[t].write_new(b, slot, op.key, op.val);
                self.layout.charge_kv_write(ctx);
                self.out.inserted += 1;
                warp.cur += 1;
            } else if op.target == 0 && op.evictions == 0 {
                // First bucket full: try the alternate bucket before evicting.
                warp.ops[warp.cur].target = 1;
            } else {
                // Evict a pseudo-random victim and continue its chain in the
                // other table.
                let slot = (splitmix64(self.seed ^ op.key as u64 ^ (op.evictions as u64) << 32)
                    as usize)
                    % self.layout.slots;
                let (ek, ev) = self.tables[t].swap(b, slot, op.key, op.val);
                self.layout.charge_kv_write(ctx);
                ctx.metrics.charge(ChargeKind::Evictions, 1);
                let cur = &mut warp.ops[warp.cur];
                cur.key = ek;
                cur.val = ev;
                cur.target = 1 - t;
                cur.evictions = op.evictions + 1;
                cur.in_flight = true;
                if cur.evictions >= self.eviction_limit {
                    self.out.failed.push(*cur);
                    warp.cur += 1;
                }
            }
        }
        ctx.atomic_exch_unlock(&mut self.tables[t].locks, t as u32, b);
        if warp.cur == warp.ops.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Pending
        }
    }

    fn end_round(&mut self) {
        for t in self.tables.iter_mut() {
            t.locks.end_round();
        }
    }
}

impl MegaKv {
    /// Create a MegaKV table with `buckets_per_table` buckets in each of its
    /// two subtables, under the paper's default layout.
    pub fn new(
        buckets_per_table: usize,
        bounds: Option<ResizeBounds>,
        seed: u64,
        sim: &mut SimContext,
    ) -> Result<Self> {
        Self::with_layout(
            buckets_per_table,
            bounds,
            seed,
            LayoutConfig::default(),
            sim,
        )
    }

    /// Create a MegaKV table under an explicit bucket layout.
    pub fn with_layout(
        buckets_per_table: usize,
        bounds: Option<ResizeBounds>,
        seed: u64,
        layout: LayoutConfig,
        sim: &mut SimContext,
    ) -> Result<Self> {
        layout.validate().map_err(TableError::Core)?;
        let tables = vec![
            MkTable::new(buckets_per_table, layout),
            MkTable::new(buckets_per_table, layout),
        ];
        for t in &tables {
            sim.device.alloc(t.device_bytes())?;
        }
        let hashes = vec![
            UniversalHash::from_seed(seed ^ 0x1111_2222),
            UniversalHash::from_seed(seed ^ 0x3333_4444),
        ];
        Ok(Self {
            tables,
            hashes,
            layout,
            bounds,
            eviction_limit: 64,
            seed,
            schedule: SchedulePolicy::FixedOrder,
        })
    }

    /// Create a table pre-sized so `items` keys load it to `target_fill`.
    pub fn with_capacity(
        items: usize,
        target_fill: f64,
        bounds: Option<ResizeBounds>,
        seed: u64,
        sim: &mut SimContext,
    ) -> Result<Self> {
        // Mixed n/2n sizing via the engine's shared helper (the same one
        // DyCuckoo's `with_capacity` uses), parameterized by the layout's
        // bucket width.
        let layout = LayoutConfig::default();
        let sizes = gpu_sim::engine::mixed_bucket_sizes(items, 2, target_fill, layout.slots);
        let mut t = Self::with_layout(sizes[0], bounds, seed, layout, sim)?;
        if sizes[1] != sizes[0] {
            sim.device.free(t.tables[1].device_bytes())?;
            let fresh = MkTable::new(sizes[1], layout);
            sim.device.alloc(fresh.device_bytes())?;
            t.tables[1] = fresh;
        }
        Ok(t)
    }

    /// Internal kernel launch; does not bump `metrics.ops` (rehash reinserts
    /// must stay out of the throughput denominator).
    fn run_insert(&mut self, metrics: &mut Metrics, ops: Vec<MkOp>) -> MkOutcome {
        let mut warps: Vec<MkWarp> = ops
            .chunks(WARP_SIZE)
            .map(|c| MkWarp {
                ops: c.to_vec(),
                cur: 0,
            })
            .collect();
        let mut kernel = MkInsertKernel {
            tables: &mut self.tables,
            hashes: &self.hashes,
            layout: self.layout,
            eviction_limit: self.eviction_limit,
            seed: self.seed,
            out: MkOutcome::default(),
        };
        run_rounds_with(&mut kernel, &mut warps, metrics, self.schedule);
        kernel.out
    }

    /// Full rehash into tables of `new_buckets` buckets each — MegaKV's
    /// only resizing strategy. Old and new tables coexist while the rehash
    /// runs, which is visible in the device's peak-memory accounting.
    fn rehash_to(&mut self, sim: &mut SimContext, new_buckets: usize) -> Result<()> {
        let drain = self.layout.drain_lines();
        // Drain all live KVs (the layout's drain lines per bucket).
        let mut live: Vec<(u32, u32)> = Vec::with_capacity(self.len() as usize);
        for t in &self.tables {
            sim.metrics
                .charge(ChargeKind::ReadTx, drain * t.n_buckets() as u64);
            live.extend(t.iter_live());
        }
        let old_bytes: u64 = self.tables.iter().map(|t| t.device_bytes()).sum();
        let fresh = vec![
            MkTable::new(new_buckets, self.layout),
            MkTable::new(new_buckets, self.layout),
        ];
        for t in &fresh {
            sim.device.alloc(t.device_bytes())?;
        }
        self.tables = fresh;

        let mut attempt = 0;
        let mut ops: Vec<MkOp> = live
            .into_iter()
            .map(|(key, val)| MkOp {
                key,
                val,
                target: 0,
                evictions: 0,
                in_flight: false,
            })
            .collect();
        while !ops.is_empty() {
            let out = self.run_insert(&mut sim.metrics, ops);
            ops = out
                .failed
                .into_iter()
                .map(|mut o| {
                    o.target = 0;
                    o.evictions = 0;
                    // o.in_flight is preserved: a failed chain still carries
                    // a kicked (possibly stale) KV.
                    o
                })
                .collect();
            if !ops.is_empty() {
                attempt += 1;
                if attempt > 32 {
                    return Err(TableError::CapacityExhausted {
                        failed_ops: ops.len(),
                    });
                }
                // Failed during rehash: grow again in place.
                self.grow_in_place(sim)?;
            }
        }
        sim.device.free(old_bytes)?;
        Ok(())
    }

    /// Failure recovery inside `rehash_to`: move the current (partially
    /// filled) tables into doubled ones.
    fn grow_in_place(&mut self, sim: &mut SimContext) -> Result<()> {
        let new_buckets = self.tables[0].n_buckets() * 2;
        let drain = self.layout.drain_lines();
        let mut live: Vec<(u32, u32)> = Vec::new();
        for t in &self.tables {
            sim.metrics
                .charge(ChargeKind::ReadTx, drain * t.n_buckets() as u64);
            live.extend(t.iter_live());
        }
        let old_bytes: u64 = self.tables.iter().map(|t| t.device_bytes()).sum();
        let fresh = vec![
            MkTable::new(new_buckets, self.layout),
            MkTable::new(new_buckets, self.layout),
        ];
        for t in &fresh {
            sim.device.alloc(t.device_bytes())?;
        }
        self.tables = fresh;
        let ops: Vec<MkOp> = live
            .into_iter()
            .map(|(key, val)| MkOp {
                key,
                val,
                target: 0,
                evictions: 0,
                in_flight: false,
            })
            .collect();
        let out = self.run_insert(&mut sim.metrics, ops);
        if !out.failed.is_empty() {
            return Err(TableError::CapacityExhausted {
                failed_ops: out.failed.len(),
            });
        }
        sim.device.free(old_bytes)?;
        Ok(())
    }

    fn maybe_resize(&mut self, sim: &mut SimContext) -> Result<()> {
        let Some(bounds) = self.bounds else {
            return Ok(());
        };
        loop {
            let fill = self.fill_factor();
            let n = self.tables[0].n_buckets();
            if fill > bounds.beta {
                self.rehash_to(sim, n * 2)?;
            } else if fill < bounds.alpha && n > 1 {
                self.rehash_to(sim, n / 2)?;
            } else {
                return Ok(());
            }
        }
    }
}

impl GpuHashTable for MegaKv {
    fn name(&self) -> &'static str {
        "MegaKV"
    }

    fn set_schedule(&mut self, policy: SchedulePolicy) {
        self.schedule = policy;
    }

    fn insert_batch(&mut self, sim: &mut SimContext, kvs: &[(u32, u32)]) -> Result<()> {
        if kvs.iter().any(|&(k, _)| k == EMPTY_KEY) {
            return Err(TableError::ZeroKey);
        }
        sim.metrics.charge(ChargeKind::Ops, kvs.len() as u64);
        let ops: Vec<MkOp> = kvs
            .iter()
            .map(|&(key, val)| MkOp {
                key,
                val,
                target: 0,
                evictions: 0,
                in_flight: false,
            })
            .collect();
        let mut out = self.run_insert(&mut sim.metrics, ops);
        let mut attempts = 0;
        while !out.failed.is_empty() {
            attempts += 1;
            if attempts > 32 {
                return Err(TableError::CapacityExhausted {
                    failed_ops: out.failed.len(),
                });
            }
            // Insertion failure triggers the resize strategy: double + full
            // rehash, then retry the failed ops.
            let n = self.tables[0].n_buckets();
            self.rehash_to(sim, n * 2)?;
            let retry: Vec<MkOp> = out
                .failed
                .iter()
                .map(|f| MkOp {
                    key: f.key,
                    val: f.val,
                    target: 0,
                    evictions: 0,
                    // A failed chain carries a kicked KV: keep its in-flight
                    // status so a retry cannot resurrect a stale value over
                    // a newer upsert.
                    in_flight: f.in_flight,
                })
                .collect();
            out = self.run_insert(&mut sim.metrics, retry);
        }
        self.maybe_resize(sim)
    }

    fn find_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Vec<Option<u32>> {
        let metrics = &mut sim.metrics;
        let probe = self.layout.probe_lines();
        let value_read = self.layout.value_read_lines();
        let mut results = Vec::with_capacity(keys.len());
        let mut rounds: u64 = 0;
        for chunk in keys.chunks(WARP_SIZE) {
            let mut warp_rounds = 0u64;
            for &key in chunk {
                let mut found = None;
                for t in 0..2 {
                    let b = self.hashes[t].bucket(key, self.tables[t].n_buckets());
                    metrics.charge(ChargeKind::ReadTx, probe);
                    metrics.charge(ChargeKind::Lookups, 1);
                    warp_rounds += 1;
                    if let Some(slot) = self.tables[t].find_slot(b, key) {
                        metrics.charge(ChargeKind::ReadTx, value_read);
                        found = Some(self.tables[t].bucket_vals(b)[slot]);
                        break;
                    }
                }
                results.push(found);
            }
            rounds = rounds.max(warp_rounds);
        }
        metrics.charge(ChargeKind::Rounds, rounds);
        metrics.charge(ChargeKind::Ops, keys.len() as u64);
        results
    }

    fn delete_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Result<u64> {
        let mut deleted = 0u64;
        let metrics = &mut sim.metrics;
        let probe = self.layout.probe_lines();
        let key_write = self.layout.key_write_lines();
        let mut rounds: u64 = 0;
        for chunk in keys.chunks(WARP_SIZE) {
            let mut warp_rounds = 0u64;
            for &key in chunk {
                for t in 0..2 {
                    let b = self.hashes[t].bucket(key, self.tables[t].n_buckets());
                    metrics.charge(ChargeKind::ReadTx, probe);
                    metrics.charge(ChargeKind::Lookups, 1);
                    warp_rounds += 1;
                    if let Some(slot) = self.tables[t].find_slot(b, key) {
                        self.tables[t].erase(b, slot);
                        metrics.charge(ChargeKind::WriteTx, key_write);
                        deleted += 1;
                        break;
                    }
                }
            }
            rounds = rounds.max(warp_rounds);
        }
        metrics.charge(ChargeKind::Rounds, rounds);
        metrics.charge(ChargeKind::Ops, keys.len() as u64);
        self.maybe_resize(sim)?;
        Ok(deleted)
    }

    fn len(&self) -> u64 {
        self.tables.iter().map(|t| t.occupied()).sum()
    }

    fn capacity_slots(&self) -> u64 {
        self.tables.iter().map(|t| t.capacity_slots()).sum()
    }

    fn device_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.device_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> SimContext {
        SimContext::new()
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut sim = sim();
        let mut t = MegaKv::new(16, None, 1, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=300u32).map(|k| (k, k * 2)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(t.len(), 300);
        let keys: Vec<u32> = (1..=300).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, v) in keys.iter().zip(found) {
            assert_eq!(v, Some(k * 2));
        }
        assert_eq!(t.find_batch(&mut sim, &[9999]), vec![None]);
    }

    #[test]
    fn delete_then_miss() {
        let mut sim = sim();
        let mut t = MegaKv::new(16, None, 1, &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(10, 1), (11, 2)]).unwrap();
        assert_eq!(t.delete_batch(&mut sim, &[10, 12]).unwrap(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_batch(&mut sim, &[10, 11]), vec![None, Some(2)]);
    }

    #[test]
    fn insertion_failure_triggers_doubling() {
        let mut sim = sim();
        // 2 tables × 1 bucket × 16 slots = 32 slots; inserting 200 keys must
        // force growth even without bounds.
        let mut t = MegaKv::new(1, None, 1, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=200u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(t.len(), 200);
        assert!(t.capacity_slots() >= 200);
        let keys: Vec<u32> = (1..=200).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }

    #[test]
    fn bounded_mode_resizes_on_fill() {
        let mut sim = sim();
        let bounds = ResizeBounds {
            alpha: 0.3,
            beta: 0.85,
        };
        let mut t = MegaKv::new(8, Some(bounds), 1, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=1000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let fill = t.fill_factor();
        assert!(fill <= 0.85 + 1e-9, "fill {fill} above beta");
        // Mass delete should halve the structure back down.
        let dels: Vec<u32> = (1..=950).collect();
        t.delete_batch(&mut sim, &dels).unwrap();
        assert!(
            t.fill_factor() >= 0.3 - 1e-9,
            "fill {} below alpha after downsizing",
            t.fill_factor()
        );
        let keys: Vec<u32> = (951..=1000).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }

    #[test]
    fn rehash_peak_memory_exceeds_steady_state() {
        let mut sim = sim();
        let bounds = ResizeBounds {
            alpha: 0.3,
            beta: 0.85,
        };
        let mut t = MegaKv::new(8, Some(bounds), 1, &mut sim).unwrap();
        sim.device.reset_peak();
        let kvs: Vec<(u32, u32)> = (1..=2000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert!(
            sim.device.peak_bytes() > t.device_bytes(),
            "full rehash must transiently hold old + new tables"
        );
    }

    #[test]
    fn upsert_semantics_in_same_bucket() {
        let mut sim = sim();
        let mut t = MegaKv::new(16, None, 1, &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(42, 1)]).unwrap();
        t.insert_batch(&mut sim, &[(42, 2)]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_batch(&mut sim, &[42]), vec![Some(2)]);
    }

    #[test]
    fn same_bucket_width_as_dycuckoo() {
        // The paper's port of MegaKV shares DyCuckoo's key-only bucket
        // layout: 32 keys per 128-byte line.
        assert_eq!(MK_BUCKET_SLOTS, dycuckoo::BUCKET_SLOTS);
    }

    #[test]
    fn aos_layout_agrees_with_soa() {
        let mut sim_a = sim();
        let mut sim_b = sim();
        let mut soa = MegaKv::new(16, None, 1, &mut sim_a).unwrap();
        let mut aos = MegaKv::with_layout(
            16,
            None,
            1,
            LayoutConfig::aos(MK_BUCKET_SLOTS, 4, 4),
            &mut sim_b,
        )
        .unwrap();
        let kvs: Vec<(u32, u32)> = (1..=400u32).map(|k| (k, k * 3)).collect();
        soa.insert_batch(&mut sim_a, &kvs).unwrap();
        aos.insert_batch(&mut sim_b, &kvs).unwrap();
        assert_eq!(soa.len(), aos.len());
        let keys: Vec<u32> = (1..=400).collect();
        assert_eq!(
            soa.find_batch(&mut sim_a, &keys),
            aos.find_batch(&mut sim_b, &keys)
        );
    }
}
