//! **Figure 6** — "Throughput of DyCuckoo for varying the number of hash
//! tables": insert and find Mops for d = 2…8 with the total memory fixed to
//! the default filled factor θ = 85%.
//!
//! Paper shape to reproduce: insert throughput increases with more
//! subtables (more alternative locations ⇒ fewer evictions), with
//! diminishing returns; find throughput stays flat because the two-layer
//! scheme always probes at most two buckets.

use baselines::DyCuckooTable;
use bench::driver::{run_static, Scheme};
use bench::report::{fmt_mops, Table};
use bench::{scale, seed};
use dycuckoo::{Config, DupPolicy};
use gpu_sim::SimContext;
use workloads::dataset_by_name;

fn main() {
    let scale = scale();
    let seed = seed();
    let theta = 0.85;
    let ds = dataset_by_name("RAND")
        .unwrap()
        .scaled(scale)
        .generate(seed);
    let n_queries = (1_000_000.0 * scale).round() as usize;
    println!(
        "Figure 6: DyCuckoo throughput vs number of subtables (RAND, {} pairs, θ={theta})",
        ds.len()
    );

    // Two insert variants: the library default (a fresh key may try all
    // its candidate buckets before evicting) and Algorithm 1 verbatim
    // (immediate evict), where eviction chains are common enough for the
    // paper's more-tables-help effect to appear.
    let mut t = Table::new(&[
        "d",
        "insert Mops",
        "insert (Alg.1) Mops",
        "find Mops",
        "evictions (Alg.1)",
    ]);
    for d in 2..=8 {
        let mut row = vec![d.to_string()];
        let mut find_mops = String::new();
        let mut alg1_evictions = String::new();
        for reroute in [true, false] {
            let mut sim = SimContext::new();
            let cfg = Config {
                num_tables: d,
                alpha: 0.0,
                beta: 1.0,
                seed,
                dup_policy: DupPolicy::PaperInsert,
                reroute_before_evict: reroute,
                ..Config::default()
            };
            let mut table =
                DyCuckooTable::with_capacity(cfg, ds.unique_keys, theta, &mut sim).unwrap();
            let r = run_static(&mut table, &mut sim, &ds, n_queries, seed ^ 0xF6);
            let _ = Scheme::DyCuckoo;
            row.push(fmt_mops(r.insert.mops));
            find_mops = fmt_mops(r.find.mops);
            if !reroute {
                alg1_evictions = r.insert.metrics.evictions.to_string();
            }
        }
        row.push(find_mops);
        row.push(alg1_evictions);
        t.row(row);
    }
    t.print("Figure 6: vary number of hash tables");
}
