//! **Figure 11** — "Tracking the filled factor": θ after every batch of the
//! default dynamic workload (r = 0.2), per dataset and scheme, plus the
//! memory-saving headline.
//!
//! Paper shape to reproduce: DyCuckoo stays inside [α, β] with small steps
//! (one subtable resized at a time); MegaKV sawtooths (whole-structure
//! double/half); Slab starts fine but its filled factor decays once
//! deletions accumulate (symbolic deletion never returns memory) — by the
//! end DyCuckoo holds up to ~4× less memory (COM).

use bench::driver::{build_dynamic, run_dynamic, Scheme};
use bench::report::{fmt_mib, fmt_pct, Table};
use bench::{scale, seed};
use gpu_sim::SimContext;
use workloads::{paper_datasets, DynamicWorkload};

fn main() {
    let scale = scale();
    let seed = seed();
    let batch = ((1_000_000.0 * scale).round() as usize).max(1000);
    println!("Figure 11: filled factor per batch (r=0.2, batch={batch}, scale={scale})");

    for spec in paper_datasets() {
        let ds = spec.scaled(scale).generate(seed);
        let w = DynamicWorkload::build(&ds, batch, 0.2, seed);
        let mut traces = Vec::new();
        let mut peaks = Vec::new();
        for scheme in Scheme::dynamic_set() {
            let mut sim = SimContext::new();
            let mut table = build_dynamic(scheme, 0.30, 0.85, batch, seed, &mut sim);
            let res = run_dynamic(table.as_mut(), &mut sim, &w);
            peaks.push((scheme.label(), res.device_peak_bytes));
            traces.push((scheme.label(), res.traces));
        }

        // θ series, downsampled to at most ~20 rows.
        let n_batches = w.batches.len();
        let step = (n_batches / 20).max(1);
        let mut t = Table::new(&[
            "batch",
            "MegaKV θ",
            "Slab θ",
            "DyCuckoo θ",
            "MegaKV MiB",
            "Slab MiB",
            "DyCuckoo MiB",
        ]);
        for b in (0..n_batches).step_by(step) {
            t.row(vec![
                b.to_string(),
                fmt_pct(traces[0].1[b].fill),
                fmt_pct(traces[1].1[b].fill),
                fmt_pct(traces[2].1[b].fill),
                fmt_mib(traces[0].1[b].device_bytes),
                fmt_mib(traces[1].1[b].device_bytes),
                fmt_mib(traces[2].1[b].device_bytes),
            ]);
        }
        t.print(&format!(
            "Figure 11 [{}]: filled factor and memory per batch (phase 2 starts at batch {})",
            spec.name, w.phase1_len
        ));

        // Memory-saving headline: true device high-water mark (including
        // transient old+new coexistence during rehashes) vs DyCuckoo.
        let dy_peak = peaks.iter().find(|(l, _)| *l == "DyCuckoo").unwrap().1;
        for (label, peak) in &peaks {
            println!(
                "  device peak {label}: {} MiB ({:.2}x DyCuckoo)",
                fmt_mib(*peak),
                *peak as f64 / dy_peak as f64
            );
        }
    }
}
