//! Property tests for the merge-rule algebra behind `upsert_batch`.
//!
//! The pipeline's correctness argument leans on one algebraic fact: for a
//! commutative rule, the final table state depends only on the *multiset*
//! of upserts applied, never on their order or batch slicing. That is what
//! licenses the scheduler to retire same-key upserts in any interleaving
//! (after per-batch coalescing) and the service to compose pending merges
//! in its read-your-writes window. These properties pin the fact down for
//! `Add` — both on the pure algebra and end-to-end through the table.

use proptest::prelude::*;
use std::collections::HashMap;

use dycuckoo::{Config, DyCuckoo, MergeRule};
use gpu_sim::SimContext;

/// SplitMix64 step for deterministic in-test shuffling.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffled(pairs: &[(u32, u32)], seed: u64) -> Vec<(u32, u32)> {
    let mut out = pairs.to_vec();
    for i in (1..out.len()).rev() {
        let j = (mix(seed ^ i as u64) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// Apply `pairs` as `Add` upserts in batches of `cut`, return the final
/// logical map via readback of every key that occurred.
fn table_after(pairs: &[(u32, u32)], cut: usize, seed: u64) -> HashMap<u32, u32> {
    let mut sim = SimContext::new();
    let cfg = Config {
        seed,
        initial_buckets: 8,
        ..Config::default()
    };
    let mut table = DyCuckoo::new(cfg, &mut sim).expect("table construction");
    for chunk in pairs.chunks(cut.max(1)) {
        table
            .upsert_batch(&mut sim, chunk, MergeRule::Add)
            .expect("upsert batch");
    }
    let mut keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.iter()
        .zip(table.find_batch(&mut sim, &keys))
        .map(|(&k, v)| (k, v.expect("upserted key present")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pure algebra: folding any permutation of `Add` args from any start
    /// state reaches the same value (wrapping-sum invariance).
    #[test]
    fn add_fold_is_permutation_invariant(
        args in proptest::collection::vec(any::<u32>(), 1..64),
        start_some in any::<bool>(),
        start_val in any::<u32>(),
        perm_seed in any::<u64>(),
    ) {
        let start = start_some.then_some(start_val);
        prop_assert!(MergeRule::Add.is_commutative());
        let apply = |order: &[u32]| {
            order.iter().fold(start, |cur, &a| Some(match cur {
                Some(old) => MergeRule::Add.merge(old, a),
                None => MergeRule::Add.initial(a),
            }))
        };
        let pairs: Vec<(u32, u32)> = args.iter().map(|&a| (1, a)).collect();
        let reordered: Vec<u32> = shuffled(&pairs, perm_seed).iter().map(|&(_, a)| a).collect();
        prop_assert_eq!(apply(&args), apply(&reordered));
    }

    /// Two-arg coalescing agrees with applying the args one at a time, in
    /// either order (this is what per-batch duplicate folding relies on).
    #[test]
    fn add_fold_args_matches_sequential_merge(a in any::<u32>(), b in any::<u32>(), old in any::<u32>()) {
        let folded = MergeRule::Add.fold_args(a, b).expect("Add folds");
        prop_assert_eq!(
            MergeRule::Add.merge(old, folded),
            MergeRule::Add.merge(MergeRule::Add.merge(old, a), b)
        );
        prop_assert_eq!(MergeRule::Add.fold_args(b, a), Some(folded));
    }

    /// End to end: the same multiset of `Add` upserts, applied in a
    /// different order AND a different batch slicing, on a table with a
    /// different hash seed, yields the same final logical map — eviction
    /// chains, resizes and per-batch coalescing included.
    #[test]
    fn add_batches_commute_through_the_table(
        pairs in proptest::collection::vec((1u32..48, 1u32..1000), 1..96),
        perm_seed in any::<u64>(),
        cut_a in 1usize..32,
        cut_b in 1usize..32,
    ) {
        let a = table_after(&pairs, cut_a, 7);
        let b = table_after(&shuffled(&pairs, perm_seed), cut_b, 99);
        prop_assert_eq!(&a, &b);
        // And both agree with the exact wrapping sum per key.
        let mut exact: HashMap<u32, u32> = HashMap::new();
        for &(k, v) in &pairs {
            let e = exact.entry(k).or_insert(0);
            *e = e.wrapping_add(v);
        }
        prop_assert_eq!(&a, &exact);
    }
}
