//! One cuckoo subtable `h^i`: bucketed key and value arrays plus per-bucket
//! locks.
//!
//! Following the paper's layout (Figure "hash table structure"):
//!
//! * keys of one bucket are stored consecutively — 32 four-byte keys fill
//!   exactly one 128-byte line, so one warp probes a bucket with a single
//!   coalesced transaction;
//! * values live in a **separate** array so operations that do not need
//!   them (missed finds, deletes) touch no value lines;
//! * each bucket has a lock flag driven by `atomicCAS`/`atomicExch`.
//!
//! Key 0 is the empty-slot sentinel.

use gpu_sim::Locks;

use crate::config::BUCKET_SLOTS;

/// The reserved key marking an empty slot.
pub const EMPTY_KEY: u32 = 0;

/// A single subtable.
#[derive(Debug, Clone)]
pub struct SubTable {
    keys: Vec<u32>,
    vals: Vec<u32>,
    /// Per-bucket lock flags (public so kernels can pass them to
    /// [`gpu_sim::RoundCtx`] atomics).
    pub locks: Locks,
    n_buckets: usize,
    occupied: u64,
}

impl SubTable {
    /// Create an empty subtable with `n_buckets` buckets (any positive
    /// count; even counts can later be halved cleanly).
    pub fn new(n_buckets: usize) -> Self {
        assert!(n_buckets >= 1, "bucket count must be positive");
        Self {
            keys: vec![EMPTY_KEY; n_buckets * BUCKET_SLOTS],
            vals: vec![0; n_buckets * BUCKET_SLOTS],
            locks: Locks::new(n_buckets),
            n_buckets,
            occupied: 0,
        }
    }

    /// Number of buckets.
    #[inline]
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// Total key slots (`n_i` in the paper, measured in slots).
    #[inline]
    pub fn capacity_slots(&self) -> u64 {
        (self.n_buckets * BUCKET_SLOTS) as u64
    }

    /// Occupied slots (`m_i` in the paper).
    #[inline]
    pub fn occupied(&self) -> u64 {
        self.occupied
    }

    /// This subtable's filled factor `θ_i = m_i / n_i`.
    #[inline]
    pub fn fill_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity_slots() as f64
    }

    /// Device bytes this subtable occupies: key array + value array +
    /// one lock word per bucket.
    pub fn device_bytes(&self) -> u64 {
        (self.n_buckets * BUCKET_SLOTS * 8 + self.n_buckets * 4) as u64
    }

    /// Device bytes for a hypothetical subtable of `n_buckets` buckets.
    pub fn device_bytes_for(n_buckets: usize) -> u64 {
        (n_buckets * BUCKET_SLOTS * 8 + n_buckets * 4) as u64
    }

    /// The keys of bucket `b`.
    #[inline]
    pub fn bucket_keys(&self, b: usize) -> &[u32] {
        &self.keys[b * BUCKET_SLOTS..(b + 1) * BUCKET_SLOTS]
    }

    /// The values of bucket `b`.
    #[inline]
    pub fn bucket_vals(&self, b: usize) -> &[u32] {
        &self.vals[b * BUCKET_SLOTS..(b + 1) * BUCKET_SLOTS]
    }

    /// Warp-wide probe: the slot in bucket `b` holding `key`, if any.
    /// (In CUDA this is one ballot over the 32 lanes.)
    #[inline]
    pub fn find_slot(&self, b: usize, key: u32) -> Option<usize> {
        self.bucket_keys(b).iter().position(|&k| k == key)
    }

    /// Warp-wide probe for an empty slot in bucket `b`.
    #[inline]
    pub fn find_empty(&self, b: usize) -> Option<usize> {
        self.find_slot(b, EMPTY_KEY)
    }

    /// Read the KV pair at `(bucket, slot)`.
    #[inline]
    pub fn slot(&self, b: usize, s: usize) -> (u32, u32) {
        (
            self.keys[b * BUCKET_SLOTS + s],
            self.vals[b * BUCKET_SLOTS + s],
        )
    }

    /// Write a KV pair into an **empty** slot, growing the occupancy count.
    #[inline]
    pub fn write_new(&mut self, b: usize, s: usize, key: u32, val: u32) {
        let idx = b * BUCKET_SLOTS + s;
        debug_assert_eq!(self.keys[idx], EMPTY_KEY, "write_new over a live slot");
        debug_assert_ne!(key, EMPTY_KEY);
        self.keys[idx] = key;
        self.vals[idx] = val;
        self.occupied += 1;
    }

    /// Overwrite the value of a live slot (an in-place update).
    #[inline]
    pub fn update_val(&mut self, b: usize, s: usize, val: u32) {
        debug_assert_ne!(self.keys[b * BUCKET_SLOTS + s], EMPTY_KEY);
        self.vals[b * BUCKET_SLOTS + s] = val;
    }

    /// Swap the KV at `(b, s)` with the given pair, returning the evicted
    /// occupant. Occupancy is unchanged.
    #[inline]
    pub fn swap(&mut self, b: usize, s: usize, key: u32, val: u32) -> (u32, u32) {
        let idx = b * BUCKET_SLOTS + s;
        debug_assert_ne!(self.keys[idx], EMPTY_KEY, "swap with an empty slot");
        let old = (self.keys[idx], self.vals[idx]);
        self.keys[idx] = key;
        self.vals[idx] = val;
        old
    }

    /// Erase the key at `(b, s)`, shrinking the occupancy count. The value
    /// line is deliberately untouched — the paper stores keys and values
    /// separately precisely so deletion never pays for value traffic.
    #[inline]
    pub fn erase(&mut self, b: usize, s: usize) {
        let idx = b * BUCKET_SLOTS + s;
        debug_assert_ne!(self.keys[idx], EMPTY_KEY, "erasing an empty slot");
        self.keys[idx] = EMPTY_KEY;
        self.occupied -= 1;
    }

    /// Iterate over all live `(key, value)` pairs (host-side; used by
    /// rehashing, verification and tests — not charged to the cost model).
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| (k, v))
    }

    /// Recount occupancy from the key array. Used by debug assertions and
    /// the accounting-drift property test.
    pub fn recount(&self) -> u64 {
        self.keys.iter().filter(|&&k| k != EMPTY_KEY).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_table_is_empty() {
        let t = SubTable::new(8);
        assert_eq!(t.n_buckets(), 8);
        assert_eq!(t.capacity_slots(), 8 * 32);
        assert_eq!(t.occupied(), 0);
        assert_eq!(t.fill_factor(), 0.0);
        assert!(t.find_empty(0).is_some());
        assert!(t.find_slot(0, 42).is_none());
    }

    #[test]
    fn write_find_erase_roundtrip() {
        let mut t = SubTable::new(4);
        let s = t.find_empty(2).unwrap();
        t.write_new(2, s, 99, 7);
        assert_eq!(t.occupied(), 1);
        let found = t.find_slot(2, 99).unwrap();
        assert_eq!(t.slot(2, found), (99, 7));
        t.erase(2, found);
        assert_eq!(t.occupied(), 0);
        assert!(t.find_slot(2, 99).is_none());
    }

    #[test]
    fn swap_returns_old_pair_and_keeps_occupancy() {
        let mut t = SubTable::new(2);
        t.write_new(1, 0, 5, 50);
        let old = t.swap(1, 0, 6, 60);
        assert_eq!(old, (5, 50));
        assert_eq!(t.slot(1, 0), (6, 60));
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn update_val_changes_value_only() {
        let mut t = SubTable::new(2);
        t.write_new(0, 3, 11, 1);
        t.update_val(0, 3, 2);
        assert_eq!(t.slot(0, 3), (11, 2));
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn fill_factor_and_recount_agree() {
        let mut t = SubTable::new(2);
        for i in 0..10u32 {
            let b = (i % 2) as usize;
            let s = t.find_empty(b).unwrap();
            t.write_new(b, s, i + 1, i);
        }
        assert_eq!(t.occupied(), 10);
        assert_eq!(t.recount(), 10);
        assert!((t.fill_factor() - 10.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn full_bucket_has_no_empty_slot() {
        let mut t = SubTable::new(1);
        for i in 0..BUCKET_SLOTS as u32 {
            let s = t.find_empty(0).unwrap();
            t.write_new(0, s, i + 1, 0);
        }
        assert!(t.find_empty(0).is_none());
    }

    #[test]
    fn iter_live_yields_all_pairs() {
        let mut t = SubTable::new(2);
        t.write_new(0, 0, 1, 10);
        t.write_new(1, 5, 2, 20);
        let mut live: Vec<_> = t.iter_live().collect();
        live.sort_unstable();
        assert_eq!(live, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn device_bytes_counts_keys_values_locks() {
        let t = SubTable::new(4);
        assert_eq!(t.device_bytes(), (4 * 32 * 8 + 4 * 4) as u64);
        assert_eq!(SubTable::device_bytes_for(4), t.device_bytes());
    }
}
