//! Property tests for the SIMT execution model: the scheduler and lock
//! semantics must be deterministic, deadlock-free for single-lock-per-step
//! kernels, and cost-monotone.

use proptest::collection::vec;
use proptest::prelude::*;

use gpu_sim::{
    run_rounds, CostModel, DeviceConfig, Locks, Metrics, RoundCtx, RoundKernel, StepOutcome,
};

/// A warp that must acquire (and immediately release) a sequence of locks,
/// one attempt per round.
struct LockSeqKernel {
    locks: Locks,
}

#[derive(Clone, Debug)]
struct LockSeqWarp {
    targets: Vec<usize>,
    cur: usize,
}

impl RoundKernel<LockSeqWarp> for LockSeqKernel {
    fn step(&mut self, warp: &mut LockSeqWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let Some(&t) = warp.targets.get(warp.cur) else {
            return StepOutcome::Done;
        };
        if ctx.atomic_cas_lock(&mut self.locks, 0, t) {
            ctx.atomic_exch_unlock(&mut self.locks, 0, t);
            warp.cur += 1;
        }
        if warp.cur == warp.targets.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Pending
        }
    }

    fn end_round(&mut self) {
        self.locks.end_round();
    }
}

proptest! {
    /// Lock-per-step kernels always terminate (each round at least one
    /// contender for every contended lock wins), all warps complete, and
    /// every lock is released at the end.
    #[test]
    fn lock_kernels_terminate_and_release(
        seqs in vec(vec(0usize..8, 0..12), 1..40)
    ) {
        let mut kernel = LockSeqKernel { locks: Locks::new(8) };
        let mut warps: Vec<LockSeqWarp> = seqs
            .iter()
            .map(|s| LockSeqWarp { targets: s.clone(), cur: 0 })
            .collect();
        let mut metrics = Metrics::default();
        let total_steps: usize = seqs.iter().map(Vec::len).sum();
        let rounds = run_rounds(&mut kernel, &mut warps, &mut metrics);
        prop_assert!(warps.iter().all(|w| w.cur == w.targets.len()));
        prop_assert!(kernel.locks.all_free());
        // Progress bound: with 8 locks and one attempt per warp-round, the
        // kernel cannot need more rounds than total lock acquisitions.
        prop_assert!(rounds <= total_steps as u64 + 1, "rounds {} steps {}", rounds, total_steps);
        // Each acquisition = CAS + unlock = 2 atomics, failures add more.
        prop_assert!(metrics.atomic_ops >= 2 * total_steps as u64);
    }

    /// Determinism: the same warp inputs produce identical metrics.
    #[test]
    fn scheduler_is_deterministic(seqs in vec(vec(0usize..4, 0..8), 1..20)) {
        let run = || {
            let mut kernel = LockSeqKernel { locks: Locks::new(4) };
            let mut warps: Vec<LockSeqWarp> = seqs
                .iter()
                .map(|s| LockSeqWarp { targets: s.clone(), cur: 0 })
                .collect();
            let mut metrics = Metrics::default();
            run_rounds(&mut kernel, &mut warps, &mut metrics);
            metrics
        };
        prop_assert_eq!(run(), run());
    }

    /// The cost model is monotone: adding traffic of any kind never makes
    /// a kernel faster.
    #[test]
    fn cost_model_is_monotone(
        base_reads in 0u64..100_000,
        extra_reads in 0u64..10_000,
        extra_random in 0u64..10_000,
        extra_dependent in 0u64..10_000,
        extra_serial in 0u64..10_000,
    ) {
        let cfg = DeviceConfig::default();
        let model = CostModel::new(&cfg);
        let base = Metrics {
            read_transactions: base_reads,
            rounds: 1,
            ..Metrics::default()
        };
        let more = Metrics {
            read_transactions: base_reads + extra_reads,
            random_read_transactions: extra_random,
            dependent_read_transactions: extra_dependent,
            atomic_serial_units: extra_serial,
            rounds: 1,
            ..Metrics::default()
        };
        prop_assert!(model.kernel_time_ns(&more) >= model.kernel_time_ns(&base));
    }

    /// Uncoalesced and dependent traffic are strictly more expensive than
    /// the same volume of coalesced traffic.
    #[test]
    fn derates_are_strict(n in 1u64..100_000) {
        let cfg = DeviceConfig::default();
        let model = CostModel::new(&cfg);
        let coalesced = Metrics { read_transactions: n, ..Metrics::default() };
        let random = Metrics { random_read_transactions: n, ..Metrics::default() };
        let dependent = Metrics { dependent_read_transactions: n, ..Metrics::default() };
        prop_assert!(model.memory_time_ns(&random) > model.memory_time_ns(&coalesced));
        prop_assert!(model.memory_time_ns(&dependent) > model.memory_time_ns(&coalesced));
        prop_assert!(model.memory_time_ns(&random) > model.memory_time_ns(&dependent));
    }

    /// Device alloc/free round-trips leave the device empty, and the peak
    /// equals the running maximum.
    #[test]
    fn device_accounting_roundtrip(sizes in vec(1u64..1_000_000, 1..50)) {
        let mut dev = gpu_sim::Device::new(DeviceConfig::default());
        let mut running = 0u64;
        let mut peak = 0u64;
        for &s in &sizes {
            dev.alloc(s).unwrap();
            running += s;
            peak = peak.max(running);
            prop_assert_eq!(dev.allocated_bytes(), running);
        }
        prop_assert_eq!(dev.peak_bytes(), peak);
        for &s in &sizes {
            dev.free(s).unwrap();
        }
        prop_assert_eq!(dev.allocated_bytes(), 0);
        prop_assert_eq!(dev.peak_bytes(), peak);
    }
}
