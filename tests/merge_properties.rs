//! Algebraic laws of the per-thread observability merges (DESIGN.md §4j).
//!
//! The host-par backend gives every worker thread its own `Metrics`
//! window and (optionally) its own `Attribution` tree, then merges them
//! into the caller's totals at quiesce points — in thread-index order,
//! but *correctness must not depend on that order*. That is only true if
//! merge is a commutative monoid: associative, commutative, with the
//! empty value as identity. These property tests pin all three laws for
//! both structures over arbitrary counter loads, plus the end-to-end
//! conservation law on a real `ParTable`: whatever the thread count and
//! workload, the merged attribution accounts for every merged metric,
//! kind for kind.

use proptest::collection::vec;
use proptest::prelude::*;

use dycuckoo::{Config, ParTable};
use gpu_sim::{ChargeKind, Metrics};
use obs::attr;

/// A `Metrics` with the given per-kind counter loads (profiler disarmed,
/// so `charge` only increments the struct).
fn metrics_from(loads: &[u64]) -> Metrics {
    let mut m = Metrics::default();
    for (kind, &n) in ChargeKind::ALL.into_iter().zip(loads) {
        m.charge(kind, n);
    }
    m
}

fn merged(a: &Metrics, b: &Metrics) -> Metrics {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// An `Attribution` built by replaying `(path, kind, n)` charges through
/// the thread-local profiler — the only constructor there is, which is
/// the point: these trees are shaped exactly like real drained windows.
fn attr_from(entries: &[(usize, usize, u64)]) -> attr::Attribution {
    const PATHS: [&str; 5] = ["", "insert", "insert/evict", "find", "maintenance/drain"];
    attr::start();
    for &(p, k, n) in entries {
        let _scope = attr::scope(PATHS[p % PATHS.len()]);
        attr::charge(ChargeKind::ALL[k % 12], n);
    }
    attr::stop()
}

fn attr_merged(a: &attr::Attribution, b: &attr::Attribution) -> attr::Attribution {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Counter loads small enough that three-way sums cannot overflow.
fn loads() -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..1 << 40, 12)
}

fn attr_entries() -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    vec((0usize..5, 0usize..12, 0u64..1 << 40), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metrics_merge_is_commutative(a in loads(), b in loads()) {
        let (a, b) = (metrics_from(&a), metrics_from(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn metrics_merge_is_associative(a in loads(), b in loads(), c in loads()) {
        let (a, b, c) = (metrics_from(&a), metrics_from(&b), metrics_from(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn metrics_merge_has_the_empty_window_as_identity(a in loads()) {
        let a = metrics_from(&a);
        prop_assert_eq!(merged(&a, &Metrics::default()), a.clone());
        prop_assert_eq!(merged(&Metrics::default(), &a), a);
    }

    #[test]
    fn attribution_merge_is_commutative(a in attr_entries(), b in attr_entries()) {
        let (a, b) = (attr_from(&a), attr_from(&b));
        prop_assert_eq!(attr_merged(&a, &b), attr_merged(&b, &a));
    }

    #[test]
    fn attribution_merge_is_associative(
        a in attr_entries(),
        b in attr_entries(),
        c in attr_entries(),
    ) {
        let (a, b, c) = (attr_from(&a), attr_from(&b), attr_from(&c));
        prop_assert_eq!(
            attr_merged(&attr_merged(&a, &b), &c),
            attr_merged(&a, &attr_merged(&b, &c))
        );
    }

    #[test]
    fn attribution_merge_has_the_empty_tree_as_identity(a in attr_entries()) {
        let a = attr_from(&a);
        let empty = attr_from(&[]);
        prop_assert_eq!(attr_merged(&a, &empty), a.clone());
        prop_assert_eq!(attr_merged(&empty, &a), a);
    }

    /// End to end: a profiled `ParTable` run on 1..=8 threads merges its
    /// workers' windows into totals whose attribution conserves every
    /// counter kind — Σ attributed == merged metrics, exactly, however
    /// the scheduler interleaved the workers.
    #[test]
    fn par_table_conserves_attribution_across_threads(
        threads in 1usize..=8,
        seed in 0u64..1024,
        kvs in vec((1u32..2000, any::<u32>()), 1..400),
    ) {
        let mut table = ParTable::new(
            Config {
                initial_buckets: 4,
                seed,
                ..Config::default()
            },
            threads,
        )
        .expect("table");
        table.set_profiling(true);
        table.insert_batch(&kvs).expect("insert");
        let keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
        let _ = table.find_batch(&keys);
        let _ = table.delete_batch(&keys[..keys.len() / 2]);
        let totals = table.take_metrics();
        let tree = table.take_attribution();
        for kind in ChargeKind::ALL {
            prop_assert_eq!(
                tree.total(kind),
                totals.get(kind),
                "attribution drift on {} with {} threads",
                kind.name(),
                threads
            );
        }
        // ParTable charges logical kinds (ops, lookups), not memory
        // transactions — those belong to the sim device model.
        prop_assert!(tree.total(ChargeKind::Ops) > 0, "profiler saw no ops");
    }
}
