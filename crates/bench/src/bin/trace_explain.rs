//! **trace_explain** — replay any workload under the flight recorder and
//! explain where the time went, op by op.
//!
//! Re-executes a fuzz case (either a `repro-*.ron` artifact from
//! `schedule_fuzz`, or a fresh `(target, seed, policy)` triple) with the
//! recorder armed, then prints the top-k most expensive retired operations
//! with their full causal chain: the batch flush that admitted them (for
//! the service target), the kernel launch that carried them, every cuckoo
//! eviction step of their chain, and the lock contention they ran into —
//! all stamped with the simulated clock, the cumulative scheduler round,
//! and the recorder sequence number.
//!
//! ```text
//! trace_explain [--replay FILE | --target NAME --seed N --ops N [--policy SPEC]]
//!               [--migration-quantum Q] [--inject-lock-elision] [--rmw] [--top K]
//!               [--chrome PATH] [--jsonl PATH] [--folded PATH]
//! ```
//!
//! * `--replay FILE` — re-run a `schedule_fuzz` repro artifact. The oracle
//!   verdict is reported but does not abort the explanation: a trace of a
//!   violating execution is exactly what the artifact is for.
//! * `--target` — one of `dycuckoo,wide,megakv,slab,linear,cudpp,service`
//!   (default `dycuckoo`). Only the DyCuckoo-cored targets emit per-op
//!   events today; the others still produce launch/lock-level traces.
//! * `--migration-quantum Q` — `inf` (default) or a bucket count; finite
//!   values run resizes as incremental migrations, so the trace shows
//!   per-chunk `migrate:*` spans instead of one stop-the-world `resize:*`.
//! * `--rmw` — generate the workload with `gen_ops_rmw` (upserts under
//!   every merge rule plus increments). Retired read-modify-write ops are
//!   additionally ranked in their own section, so merge-heavy hot keys
//!   are visible even when plain inserts dominate the global top-k.
//! * `--top K` — how many retired ops to explain (default 5).
//! * `--chrome PATH` — also write the trace as Chrome `trace_event` JSON
//!   (open in Perfetto or `chrome://tracing`).
//! * `--jsonl PATH` — also write the raw event stream as JSON lines.
//! * `--folded PATH` — also write flamegraph-collapsed folded stacks
//!   (`frame;frame;frame weight` lines): each retired op contributes its
//!   causal span chain plus an `op:kind:outcome` leaf weighted by its
//!   schedule footprint, and each maintenance span its chain weighted by
//!   its own footprint. Loads directly in inferno's `flamegraph.pl`
//!   replacement or speedscope.
//!
//! An op's cost here is its schedule footprint, not wall time: each bucket
//! probe costs 1, each eviction step 2 (a read + a relocation write), each
//! failed lock acquisition 1 (a wasted round of its warp).
//!
//! Exit code: 0 on success (regardless of oracle verdict), 2 on usage
//! errors.

use std::collections::HashMap;
use std::process::ExitCode;

use bench::fuzz::{gen_ops, gen_ops_rmw, run_case, Case, Repro, Target};
use gpu_sim::{LayoutConfig, SchedulePolicy};
use obs::{Event, TraceEvent};

struct Args {
    replay: Option<String>,
    target: Target,
    seed: u64,
    ops: usize,
    policy: Option<SchedulePolicy>,
    inject: bool,
    rmw: bool,
    migration_quantum: usize,
    top: usize,
    chrome: Option<String>,
    jsonl: Option<String>,
    folded: Option<String>,
}

fn usage(err: &str) -> ExitCode {
    eprintln!("trace_explain: {err}");
    eprintln!(
        "usage: trace_explain [--replay FILE | --target NAME --seed N --ops N [--policy SPEC]]\n\
         \x20                    [--migration-quantum Q] [--inject-lock-elision] [--rmw] [--top K]\n\
         \x20                    [--chrome PATH] [--jsonl PATH] [--folded PATH]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        replay: None,
        target: Target::DyCuckoo,
        seed: 1,
        ops: 96,
        policy: None,
        inject: false,
        rmw: false,
        migration_quantum: usize::MAX,
        top: 5,
        chrome: None,
        jsonl: None,
        folded: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--replay" => args.replay = Some(val("--replay")?),
            "--target" => {
                let name = val("--target")?;
                args.target =
                    Target::from_name(&name).ok_or_else(|| format!("unknown target {name:?}"))?;
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--ops" => args.ops = val("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--policy" => {
                let spec = val("--policy")?;
                args.policy = Some(
                    SchedulePolicy::from_spec(&spec)
                        .ok_or_else(|| format!("unknown policy spec {spec:?}"))?,
                );
            }
            "--inject-lock-elision" => args.inject = true,
            "--rmw" => args.rmw = true,
            "--migration-quantum" => {
                let spec = val("--migration-quantum")?;
                args.migration_quantum = match spec.trim() {
                    "inf" | "max" => usize::MAX,
                    n => n
                        .parse::<usize>()
                        .ok()
                        .filter(|&q| q > 0)
                        .ok_or_else(|| format!("bad migration quantum {n:?}"))?,
                };
            }
            "--top" => args.top = val("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            "--chrome" => args.chrome = Some(val("--chrome")?),
            "--jsonl" => args.jsonl = Some(val("--jsonl")?),
            "--folded" => args.folded = Some(val("--folded")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.ops == 0 || args.top == 0 {
        return Err("--ops and --top must be positive".to_string());
    }
    Ok(args)
}

fn load_case(args: &Args) -> Result<Case, String> {
    if let Some(path) = &args.replay {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let repro = Repro::from_ron(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
        if !repro.violation.is_empty() {
            println!("repro artifact (recorded violation: {})", repro.violation);
        }
        return Ok(repro.case);
    }
    Ok(Case {
        target: args.target,
        policy: args.policy.unwrap_or(SchedulePolicy::from_seed(args.seed)),
        workload_seed: args.seed,
        inject_lock_elision: args.inject,
        layout: LayoutConfig::default(),
        migration_quantum: args.migration_quantum,
        tier: kv_service::Tier::Fixed,
        key_dist: workloads::LengthDist::Mixed,
        fingerprint: 0,
        miss_filter: false,
        host_par_threads: 0,
        ops: if args.rmw {
            gen_ops_rmw(args.seed, args.ops)
        } else {
            gen_ops(args.seed, args.ops)
        },
    })
}

/// What the recorder knows about one span: where it opened/closed and who
/// encloses it.
struct Span {
    open: usize,
    close: Option<usize>,
    parent: u32,
}

/// Index the event stream: span id -> open/close/parent, plus per-span
/// lock-conflict counts.
fn index_spans(events: &[TraceEvent]) -> (HashMap<u32, Span>, HashMap<u32, u64>) {
    let mut spans: HashMap<u32, Span> = HashMap::new();
    let mut locks: HashMap<u32, u64> = HashMap::new();
    for (i, te) in events.iter().enumerate() {
        if te.event.opens_span() {
            spans.insert(
                te.span,
                Span {
                    open: i,
                    close: None,
                    parent: te.parent,
                },
            );
        } else if te.event.closes_span() {
            if let Some(s) = spans.get_mut(&te.span) {
                s.close = Some(i);
            }
        } else if matches!(te.event, Event::LockConflict { .. }) {
            *locks.entry(te.span).or_insert(0) += 1;
        }
    }
    (spans, locks)
}

/// The schedule footprint of a retired op (see the module docs).
fn cost(probes: u32, evict_depth: u32, lock_waits: u32) -> u64 {
    probes as u64 + 2 * evict_depth as u64 + lock_waits as u64
}

fn stamp(te: &TraceEvent) -> String {
    format!("clock={} rounds={} seq={}", te.clock, te.rounds, te.seq)
}

fn describe_opener(te: &TraceEvent) -> String {
    match te.event {
        Event::LaunchBegin { kind, warps } => {
            format!("launch {} kernel, {warps} warps", kind.name())
        }
        Event::BatchFlush {
            shard,
            window,
            probes,
            puts,
            deletes,
            coalesced,
        } => format!(
            "flush shard {shard}: window {window} -> {probes} probes, {puts} puts, {deletes} deletes ({coalesced} coalesced away)"
        ),
        Event::ResizeBegin {
            grow,
            table,
            old_buckets,
        } => format!(
            "{} subtable {table} from {old_buckets} buckets",
            if grow { "upsize" } else { "downsize" }
        ),
        Event::MigrateChunkBegin {
            grow,
            table,
            cursor,
            chunk,
        } => format!(
            "migrate chunk ({} subtable {table}): source buckets [{cursor}, {})",
            if grow { "upsize" } else { "downsize" },
            cursor + chunk
        ),
        _ => te.event.name().to_string(),
    }
}

fn describe_closer(te: &TraceEvent) -> String {
    match te.event {
        Event::LaunchEnd { rounds } => format!("retired after {rounds} scheduler rounds"),
        Event::BatchEnd { completed } => format!("completed {completed} requests"),
        Event::ResizeEnd {
            new_buckets,
            moved,
            residuals,
        } => format!("now {new_buckets} buckets ({moved} moved, {residuals} residuals)"),
        Event::MigrateChunkEnd {
            moved,
            residuals,
            backlog,
        } => format!("chunk retired: {moved} moved, {residuals} residuals, backlog {backlog}"),
        _ => te.event.name().to_string(),
    }
}

/// Print the causal chain of one retired op: enclosing spans outermost
/// first, then the op's own eviction steps and contention, then the retire.
fn explain(
    rank: usize,
    events: &[TraceEvent],
    spans: &HashMap<u32, Span>,
    locks: &HashMap<u32, u64>,
    idx: usize,
) {
    let te = &events[idx];
    let Event::OpRetired {
        kind,
        op,
        key,
        outcome,
        probes,
        evict_depth,
        lock_waits,
    } = te.event
    else {
        return;
    };
    println!(
        "#{rank} {} key={key} -> {}  cost={} (probes={probes} evictions={evict_depth} lock_waits={lock_waits})  [{}]",
        kind.name(),
        outcome.name(),
        cost(probes, evict_depth, lock_waits),
        stamp(te)
    );
    // Walk the span chain outward, then print outermost first.
    let mut chain: Vec<u32> = Vec::new();
    let mut cur = te.span;
    while cur != 0 && chain.len() < 8 {
        chain.push(cur);
        cur = match spans.get(&cur) {
            Some(s) => s.parent,
            None => 0,
        };
    }
    for (depth, span_id) in chain.iter().rev().enumerate() {
        let pad = "  ".repeat(depth + 1);
        let Some(span) = spans.get(span_id) else {
            continue;
        };
        let open = &events[span.open];
        println!("{pad}\u{2514} {}  [{}]", describe_opener(open), stamp(open));
        if let Some(close) = span.close {
            let close = &events[close];
            println!("{pad}  ... {}  [{}]", describe_closer(close), stamp(close));
        }
    }
    let pad = "  ".repeat(chain.len() + 1);
    if evict_depth > 0 {
        println!("{pad}eviction chain ({evict_depth} steps):");
        for ev in events {
            if ev.span != te.span || ev.seq >= te.seq {
                continue;
            }
            if let Event::EvictStep {
                op: step_op,
                placed_key,
                carried_key,
                from_table,
                to_table,
                depth,
            } = ev.event
            {
                if step_op == op {
                    println!(
                        "{pad}  depth {depth}: key {placed_key} displaced {carried_key} (t{from_table} -> t{to_table})  [{}]",
                        stamp(ev)
                    );
                }
            }
        }
    }
    if let Some(&n) = locks.get(&te.span) {
        println!("{pad}lock conflicts in this launch: {n}");
    }
}

/// A maintenance span's schedule footprint: each rehashed KV costs 1, each
/// residual pushed to a partner subtable 2 (an extra write elsewhere),
/// plus any scheduler rounds the span itself consumed.
fn maintenance_cost(events: &[TraceEvent], span: &Span) -> u64 {
    let open = &events[span.open];
    let Some(close) = span.close else { return 0 };
    let close = &events[close];
    let rounds = close.rounds.saturating_sub(open.rounds);
    match close.event {
        Event::ResizeEnd {
            moved, residuals, ..
        }
        | Event::MigrateChunkEnd {
            moved, residuals, ..
        } => moved + 2 * residuals + rounds,
        _ => rounds,
    }
}

/// Rank structural-maintenance spans — stop-the-world resizes and
/// incremental migration chunks — by footprint, and print the top-k with
/// their causal chains (the batch flush or kernel that triggered them,
/// outermost first).
fn explain_maintenance(events: &[TraceEvent], spans: &HashMap<u32, Span>, top: usize) {
    let mut maint: Vec<(u64, usize, u32)> = Vec::new();
    for (&id, span) in spans {
        let open = &events[span.open];
        if !matches!(
            open.event,
            Event::ResizeBegin { .. } | Event::MigrateChunkBegin { .. }
        ) {
            continue;
        }
        maint.push((maintenance_cost(events, span), span.open, id));
    }
    if maint.is_empty() {
        return;
    }
    // Widest footprint first; ties break toward the earliest open so the
    // listing is deterministic.
    maint.sort_by_key(|&(c, open, _)| (std::cmp::Reverse(c), open));
    println!(
        "\ntop {} of {} maintenance spans by schedule footprint:",
        top.min(maint.len()),
        maint.len()
    );
    for (rank, &(footprint, _, id)) in maint.iter().take(top).enumerate() {
        let span = &spans[&id];
        let open = &events[span.open];
        println!(
            "#{} {}  cost={footprint}  [{}]",
            rank + 1,
            describe_opener(open),
            stamp(open)
        );
        if let Some(close) = span.close {
            let close = &events[close];
            println!("    ... {}  [{}]", describe_closer(close), stamp(close));
        }
        // The chain that caused this span, outermost first.
        let mut chain: Vec<u32> = Vec::new();
        let mut cur = span.parent;
        while cur != 0 && chain.len() < 8 {
            chain.push(cur);
            cur = match spans.get(&cur) {
                Some(s) => s.parent,
                None => 0,
            };
        }
        for (depth, anc) in chain.iter().rev().enumerate() {
            let Some(anc) = spans.get(anc) else { continue };
            let pad = "  ".repeat(depth + 2);
            let open = &events[anc.open];
            println!(
                "{pad}\u{2514} within {}  [{}]",
                describe_opener(open),
                stamp(open)
            );
        }
    }
}

/// Frame chain of a span: ancestors outermost-first, each named like the
/// Chrome trace (`launch:insert`, `flush:shard0`, ...).
fn span_chain_frames(events: &[TraceEvent], spans: &HashMap<u32, Span>, leaf: u32) -> Vec<String> {
    let mut chain: Vec<u32> = Vec::new();
    let mut cur = leaf;
    while cur != 0 && chain.len() < 8 {
        chain.push(cur);
        cur = match spans.get(&cur) {
            Some(s) => s.parent,
            None => 0,
        };
    }
    chain
        .iter()
        .rev()
        .filter_map(|id| spans.get(id))
        .map(|s| obs::export::span_name(&events[s.open].event))
        .collect()
}

/// Collapse the recorded causal spans into flamegraph folded stacks:
/// `frame;frame;frame weight` per line, identical stacks aggregated,
/// deterministically sorted. Retired ops weigh their schedule footprint
/// under an `op:kind:outcome` leaf; maintenance spans weigh their own
/// footprint (so resize/migrate cost shows up under the flush or launch
/// that triggered it).
fn folded_stacks(events: &[TraceEvent], spans: &HashMap<u32, Span>) -> String {
    let mut stacks: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut bump = |frames: Vec<String>, weight: u64| {
        if weight > 0 && !frames.is_empty() {
            *stacks.entry(frames.join(";")).or_insert(0) += weight;
        }
    };
    for te in events {
        match te.event {
            Event::OpRetired {
                kind,
                outcome,
                probes,
                evict_depth,
                lock_waits,
                ..
            } => {
                let mut frames = span_chain_frames(events, spans, te.span);
                frames.push(format!("op:{}:{}", kind.name(), outcome.name()));
                bump(frames, cost(probes, evict_depth, lock_waits));
            }
            Event::ResizeBegin { .. } | Event::MigrateChunkBegin { .. } => {
                let Some(span) = spans.get(&te.span) else {
                    continue;
                };
                let mut frames = span_chain_frames(events, spans, span.parent);
                frames.push(obs::export::span_name(&te.event));
                bump(frames, maintenance_cost(events, span));
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (stack, weight) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return usage(&e),
    };
    let case = match load_case(&args) {
        Ok(c) => c,
        Err(e) => return usage(&e),
    };
    println!(
        "tracing {} ops against {} under policy {}{}",
        case.ops.len(),
        case.target.name(),
        case.policy.spec(),
        if case.inject_lock_elision {
            " (lock elision injected)"
        } else {
            ""
        }
    );

    obs::start(1 << 20);
    let verdict = run_case(&case);
    let trace = obs::stop();
    match &verdict {
        Ok(digest) => println!("oracle: PASS (digest {digest:#018x})"),
        Err(v) => println!("oracle: VIOLATION — {v} (explaining the trace anyway)"),
    }
    println!(
        "captured {} events ({} dropped by the ring)",
        trace.events.len(),
        trace.dropped
    );
    if trace.events.is_empty() {
        println!("nothing recorded — was the `trace` feature disabled?");
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.chrome {
        let json = obs::export::chrome_trace(&trace.events);
        if let Err(e) = std::fs::write(path, json) {
            return usage(&format!("cannot write {path}: {e}"));
        }
        println!("chrome trace written to {path} (open in Perfetto / chrome://tracing)");
    }
    if let Some(path) = &args.jsonl {
        if let Err(e) = std::fs::write(path, obs::export::jsonl(&trace.events)) {
            return usage(&format!("cannot write {path}: {e}"));
        }
        println!("jsonl written to {path}");
    }

    let (spans, locks) = index_spans(&trace.events);
    if let Some(path) = &args.folded {
        let folded = folded_stacks(&trace.events, &spans);
        if let Err(e) = std::fs::write(path, &folded) {
            return usage(&format!("cannot write {path}: {e}"));
        }
        println!(
            "folded stacks written to {path} ({} distinct stacks; feed to inferno/speedscope)",
            folded.lines().count()
        );
    }
    explain_maintenance(&trace.events, &spans, args.top);
    // Rank retired ops by schedule footprint; ties break toward the
    // earliest retire so the listing is deterministic.
    let mut retired: Vec<(u64, usize, bool)> = trace
        .events
        .iter()
        .enumerate()
        .filter_map(|(i, te)| match te.event {
            Event::OpRetired {
                kind,
                probes,
                evict_depth,
                lock_waits,
                ..
            } => Some((cost(probes, evict_depth, lock_waits), i, kind.is_rmw())),
            _ => None,
        })
        .collect();
    retired.sort_by_key(|&(c, i, _)| (std::cmp::Reverse(c), i));
    if retired.is_empty() {
        println!(
            "no per-op retire events (target {} does not emit them); \
             try --chrome for the launch-level view",
            case.target.name()
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "\ntop {} of {} retired ops by schedule footprint:",
        args.top.min(retired.len()),
        retired.len()
    );
    for (rank, &(_, idx, _)) in retired.iter().take(args.top).enumerate() {
        explain(rank + 1, &trace.events, &spans, &locks, idx);
    }
    // Read-modify-write ops get their own ranking: a merge-heavy hot key
    // rarely cracks the global top-k (insert eviction chains dominate),
    // but its cumulative cost is exactly what aggregation workloads tune.
    let rmw: Vec<&(u64, usize, bool)> = retired.iter().filter(|&&(_, _, r)| r).collect();
    if !rmw.is_empty() {
        println!(
            "\ntop {} of {} retired read-modify-write ops by schedule footprint:",
            args.top.min(rmw.len()),
            rmw.len()
        );
        for (rank, &&(_, idx, _)) in rmw.iter().take(args.top).enumerate() {
            explain(rank + 1, &trace.events, &spans, &locks, idx);
        }
    }
    ExitCode::SUCCESS
}
