//! Diagnostic: cost-term breakdown per scheme on one dataset.
use bench::driver::{build_static, run_static, Scheme};
use gpu_sim::{CostModel, SimContext};
use workloads::dataset_by_name;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "COM".into());
    let scale = bench::scale();
    let ds = dataset_by_name(&name).unwrap().scaled(scale).generate(1);
    println!("{} scaled: {} pairs, {} unique", name, ds.len(), ds.unique_keys);
    for scheme in Scheme::static_set() {
        let mut sim = SimContext::new();
        let mut t = build_static(scheme, ds.unique_keys, 0.85, 1, &mut sim);
        let r = run_static(t.as_mut(), &mut sim, &ds, 1000, 7);
        let m = &r.insert.metrics;
        let model = CostModel::new(sim.device.config());
        println!(
            "{:<9} ins {:7.1} Mops | mem {:9.0} atomic {:9.0} issue {:9.0} ns | coal {} rand {} atomics {} serial {} rounds {} evict {} lockfail {}",
            scheme.label(), r.insert.mops,
            model.memory_time_ns(m), model.atomic_time_ns(m), model.issue_time_ns(m),
            m.transactions(), m.random_transactions(), m.atomic_ops, m.atomic_serial_units,
            m.rounds, m.evictions, m.lock_failures
        );
    }
}
