//! Exhaustive interleaving tests for the host-par stripe-lock protocol.
//!
//! `dycuckoo::host_par` keeps its concurrent insert path correct with two
//! rules (see `CandGuards::acquire` and `par_insert_one`):
//!
//! 1. **Canonical lock order** — a worker locks *all* of a key's candidate
//!    stripes in ascending `(table, stripe)` order, sorted and deduped,
//!    before touching any bucket. Consistent global ordering is the
//!    classical deadlock-freedom argument.
//! 2. **Claims happen under the locks** — the probe-for-duplicate and the
//!    claim-an-empty-slot are one critical section, so two workers
//!    inserting the same key can never both claim a slot (the voter-insert
//!    semantics of the sim kernel, `ops::insert`).
//!
//! Real mutexes cannot be exhaustively schedule-explored, so these tests
//! model the protocol on the vendored [`interleave`] explorer: locks are
//! boolean flags, buckets are one-slot `Option`s, and every interleaving
//! of every step is enumerated. Each rule is pinned twice — the protocol
//! as written passes on *every* schedule, and the tempting simplification
//! (unsorted acquisition; claim outside the lock) is shown to fail on
//! *some* schedule, proving the explorer has teeth and the rule is
//! load-bearing.

use interleave::{explore, Step, ThreadFn};

/// The modeled table: one flag lock and one key/value slot per stripe,
/// plus claim counters (mirroring `ParReport`).
#[derive(Debug, Clone, Default)]
struct Model {
    locks: Vec<bool>,
    slots: Vec<Option<(u32, u32)>>,
    inserted: u32,
    updated: u32,
    /// Every candidate slot was full — the real `par_insert_one` reports
    /// `Placed::Overflow` here and the key falls back to the sequential
    /// eviction-chain drain.
    overflowed: u32,
}

impl Model {
    fn new(stripes: usize) -> Self {
        Self {
            locks: vec![false; stripes],
            slots: vec![None; stripes],
            ..Self::default()
        }
    }
}

/// One modeled worker inserting `key -> val` whose candidate buckets live
/// on `cands`: lock every candidate stripe one step at a time (blocking,
/// without side effects, when a flag is held), then upsert-or-claim in a
/// single step under the locks, then release. With `canonical`, the
/// acquisition order is sorted + deduped — exactly what
/// `CandGuards::acquire` does; without it, the given order is used as-is.
fn insert_worker(mut cands: Vec<usize>, key: u32, val: u32, canonical: bool) -> ThreadFn<Model> {
    if canonical {
        cands.sort_unstable();
        cands.dedup();
    }
    let k = cands.len();
    let mut pc = 0usize;
    Box::new(move |t: &mut Model| {
        if pc < k {
            // Acquire phase, one stripe per step.
            let c = cands[pc];
            if t.locks[c] {
                return Step::Blocked;
            }
            t.locks[c] = true;
            pc += 1;
            Step::Ready
        } else if pc == k {
            // Critical section: probe every candidate for the key, else
            // claim the first empty slot. All stripes are held.
            if let Some(&c) = cands
                .iter()
                .find(|&&c| t.slots[c].is_some_and(|(sk, _)| sk == key))
            {
                t.slots[c] = Some((key, val));
                t.updated += 1;
            } else if let Some(&c) = cands.iter().find(|&&c| t.slots[c].is_none()) {
                t.slots[c] = Some((key, val));
                t.inserted += 1;
            } else {
                t.overflowed += 1;
            }
            pc += 1;
            Step::Ready
        } else {
            // Release phase, reverse order, one stripe per step.
            let i = pc - k - 1;
            t.locks[cands[k - 1 - i]] = false;
            pc += 1;
            if pc == 2 * k + 1 {
                Step::Done
            } else {
                Step::Ready
            }
        }
    })
}

/// The protocol as written: canonical ascending acquisition over
/// pairwise-overlapping candidate sets (the dining-philosophers shape that
/// breaks naive per-thread orderings) completes on every schedule.
#[test]
fn canonical_stripe_order_never_deadlocks() {
    let report = explore(
        || {
            (
                Model::new(3),
                vec![
                    insert_worker(vec![0, 1], 10, 1, true),
                    insert_worker(vec![1, 2], 20, 2, true),
                    insert_worker(vec![2, 0], 30, 3, true),
                ],
            )
        },
        |t, schedule| {
            assert_eq!(t.locks, vec![false; 3], "a lock leaked: {schedule:?}");
            // Which keys land where is schedule-dependent (so is whether a
            // late worker finds both its candidates full and overflows to
            // the sequential drain) — but every key is accounted for, and
            // occupancy matches the successful claims exactly.
            assert_eq!(t.inserted + t.overflowed, 3, "a key vanished: {schedule:?}");
            assert_eq!(t.updated, 0);
            let live = t.slots.iter().flatten().count() as u32;
            assert_eq!(live, t.inserted, "claim/occupancy mismatch: {schedule:?}");
        },
    );
    assert!(report.completed > 0);
    assert_eq!(
        report.deadlocks, 0,
        "canonical order deadlocked: {:?}",
        report.first_deadlock
    );
    assert!(!report.truncated);
}

/// The counter-example that makes rule 1 load-bearing: identical workers,
/// identical stripes, but one acquires in descending order — the explorer
/// must find the AB/BA deadlock (and also schedules that complete, since
/// deadlock depends on the interleaving).
#[test]
fn unsorted_acquisition_deadlocks_on_some_schedule() {
    let report = explore(
        || {
            (
                Model::new(2),
                vec![
                    insert_worker(vec![0, 1], 10, 1, false),
                    insert_worker(vec![1, 0], 20, 2, false),
                ],
            )
        },
        |_, _| {},
    );
    assert!(
        report.deadlocks > 0,
        "opposite acquisition orders must deadlock somewhere"
    );
    assert!(report.completed > 0, "and still complete elsewhere");
    assert!(report.first_deadlock.is_some());
}

/// Rule 2 as written: two workers race the *same* key into the same
/// candidate set. Under the locked claim, every schedule ends with exactly
/// one slot claimed and the loser observing the winner's claim as a
/// duplicate — one insert, one update, no double-claim, whichever worker
/// wins the race.
#[test]
fn same_key_race_claims_exactly_once_under_the_lock() {
    let report = explore(
        || {
            (
                Model::new(2),
                vec![
                    insert_worker(vec![0, 1], 42, 1, true),
                    insert_worker(vec![0, 1], 42, 2, true),
                ],
            )
        },
        |t, schedule| {
            assert_eq!(t.inserted, 1, "double claim: {schedule:?}");
            assert_eq!(t.updated, 1, "lost duplicate: {schedule:?}");
            let live: Vec<_> = t.slots.iter().flatten().collect();
            assert_eq!(live.len(), 1, "one key must occupy one slot: {schedule:?}");
            assert_eq!(live[0].0, 42);
        },
    );
    assert!(report.completed > 0);
    assert_eq!(report.deadlocks, 0);
}

/// The counter-example that makes rule 2 load-bearing: elide the lock and
/// split probe and claim into separate steps (the planted
/// `inject_lock_elision` bug of the sim kernel, transplanted to the host
/// model). The explorer must find a schedule where both workers read the
/// slot as empty and both claim it — two "successful" inserts for one
/// surviving slot, i.e. a lost update.
#[test]
fn elided_lock_double_claims_on_some_schedule() {
    fn elided_worker(key: u32, val: u32) -> ThreadFn<Model> {
        let mut pc = 0usize;
        let mut saw_empty = false;
        Box::new(move |t: &mut Model| {
            if pc == 0 {
                saw_empty = t.slots[0].is_none();
                pc = 1;
                Step::Ready
            } else {
                if saw_empty {
                    t.slots[0] = Some((key, val));
                    t.inserted += 1;
                } else {
                    t.slots[0] = Some((key, val));
                    t.updated += 1;
                }
                Step::Done
            }
        })
    }
    let mut double_claims = 0u32;
    let mut clean = 0u32;
    let report = explore(
        || {
            (
                Model::new(1),
                vec![elided_worker(42, 1), elided_worker(42, 2)],
            )
        },
        |t, _| {
            if t.inserted == 2 {
                double_claims += 1;
            } else if t.inserted == 1 && t.updated == 1 {
                clean += 1;
            }
        },
    );
    assert_eq!(report.deadlocks, 0);
    assert!(
        double_claims > 0,
        "the explorer must expose the elided-lock double claim"
    );
    assert!(clean > 0, "serial schedules still behave");
}
