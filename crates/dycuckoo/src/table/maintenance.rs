//! Maintenance side of the table: resize triggering, failed-insert retry
//! and the structural rehash paths (including the naive strategy the
//! paper's resize experiment compares against).
//!
//! Structural resizes run in one of two modes, selected by
//! [`crate::Config::migration_quantum`]:
//!
//! * `usize::MAX` (default) — **stop-the-world**: the historical
//!   conflict-free rehash kernels in [`crate::rehash`] run to completion
//!   inside the batch that triggered them. This path is byte-for-byte the
//!   pre-machine behaviour.
//! * finite — **incremental**: the resize becomes a
//!   [`super::migration::MigrationMachine`] pass; each batch (or explicit
//!   [`DyCuckoo::migrate_quantum`] call) drains at most one quantum of
//!   source buckets, so no single batch pays for a whole-subtable rehash.

use gpu_sim::ChargeKind;
use gpu_sim::SimContext;

use crate::config::Config;
use crate::error::{Error, Result};
use crate::ops::insert::{insert_batch as run_insert, InsertOp, InsertOutcome};
use crate::rehash;
use crate::resize::{self, ResizeOp};
use crate::subtable::SubTable;

use super::migration::{drain_chunk, DrainState, MigrationMachine};
use super::{BatchReport, DyCuckoo, ResizeEvent, TableShape, MAX_INSERT_RETRIES, MAX_RESIZE_ITERS};

impl DyCuckoo {
    /// Upsize-and-retry loop for operations that exceeded the eviction
    /// limit — the paper's "insertion failure triggers resizing".
    pub(super) fn retry_failed(
        &mut self,
        sim: &mut SimContext,
        mut out: InsertOutcome,
        report: &mut BatchReport,
    ) -> Result<()> {
        while !out.failed.is_empty() {
            // Stash first: a handful of unplaceable keys should not force a
            // structural resize (the future-work mitigation).
            if let Some(stash) = self.stash.as_mut() {
                let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
                out.failed.retain(|op| {
                    let stashed = stash.push(op.key, op.val, &mut ctx);
                    if stashed {
                        report.inserted += 1;
                    }
                    !stashed
                });
                ctx.finish();
                if out.failed.is_empty() {
                    return Ok(());
                }
            }
            if self.migration.in_flight() {
                // A stuck insert needs capacity *now*: completing the
                // in-flight migration is the correctness escape hatch, and
                // often frees enough room that no forced upsize is needed.
                self.finish_migration(sim, report)?;
            } else {
                report.retries += 1;
                if report.retries > MAX_INSERT_RETRIES {
                    return Err(Error::InsertStuck {
                        failed_ops: out.failed.len(),
                    });
                }
                let event = self.apply_resize(
                    ResizeOp::Upsize(resize::upsize_candidate(&self.tables)),
                    sim,
                )?;
                report.resizes.push(event);
            }
            // Restart each failed op fresh: it carries whatever KV its
            // eviction chain held, which re-routes through the two-layer
            // pair of that key.
            let retry_ops: Vec<InsertOp> = out
                .failed
                .iter()
                .map(|op| {
                    self.op_counter += 1;
                    InsertOp::reinsert(op.key, op.val, self.op_counter)
                })
                .collect();
            out = run_insert(
                &mut self.tables,
                &self.shape,
                retry_ops,
                None,
                None,
                &mut sim.metrics,
            );
            report.inserted += out.inserted;
            report.updated += out.updated;
        }
        Ok(())
    }

    /// Resize until θ returns to `[α, β]` (insert batches grow only; see
    /// [`resize::Direction`]).
    ///
    /// Stop-the-world mode loops whole resizes; incremental mode pumps at
    /// most one migration quantum per call (starting a migration first if θ
    /// is out of bounds), so the structural work any batch pays is bounded.
    pub(super) fn rebalance(
        &mut self,
        sim: &mut SimContext,
        dir: resize::Direction,
        report: &mut BatchReport,
    ) -> Result<()> {
        let (alpha, beta) = (self.shape.cfg.alpha, self.shape.cfg.beta);
        if self.migration.in_flight() {
            self.migrate_quantum_into(sim, report)?;
            if self.migration.in_flight() {
                return Ok(());
            }
        }
        for _ in 0..MAX_RESIZE_ITERS {
            match self.decision.decide(&self.tables, alpha, beta, dir) {
                None => return Ok(()),
                Some(op) if self.shape.cfg.migration_quantum == usize::MAX => {
                    report.resizes.push(self.apply_resize(op, sim)?)
                }
                Some(op) => {
                    self.start_migration(op, sim)?;
                    self.migrate_quantum_into(sim, report)?;
                    return Ok(());
                }
            }
        }
        Err(Error::ResizeDiverged {
            iterations: MAX_RESIZE_ITERS,
        })
    }

    /// Perform one resize operation, including residual placement for
    /// downsizing, then drain the overflow stash back into the subtables
    /// (a resize has just changed where keys belong or made room).
    fn apply_resize(&mut self, op: ResizeOp, sim: &mut SimContext) -> Result<ResizeEvent> {
        debug_assert!(
            !self.migration.in_flight(),
            "stop-the-world resize with a migration in flight"
        );
        self.decision.record(matches!(op, ResizeOp::Upsize(_)));
        let _attr = obs::attr::scope("maintenance/resize");
        let recording = obs::is_enabled();
        if recording {
            let (grow, i) = match op {
                ResizeOp::Upsize(i) => (true, i),
                ResizeOp::Downsize(i) => (false, i),
            };
            obs::span_begin(obs::Event::ResizeBegin {
                grow,
                table: i as u8,
                old_buckets: self.tables[i].n_buckets() as u64,
            });
        }
        let result = self.apply_resize_and_drain(op, sim);
        if recording {
            // Close the span even on error so the span stack stays balanced.
            let (new_buckets, moved, residuals) = match &result {
                Ok(e) => (e.new_buckets as u64, e.moved, e.residuals),
                Err(_) => (0, 0, 0),
            };
            obs::span_end(obs::Event::ResizeEnd {
                new_buckets,
                moved,
                residuals,
            });
        }
        result
    }

    /// The resize itself plus the post-resize stash drain (the span-free
    /// body of [`Self::apply_resize`]).
    fn apply_resize_and_drain(
        &mut self,
        op: ResizeOp,
        sim: &mut SimContext,
    ) -> Result<ResizeEvent> {
        let event = self.apply_resize_inner(op, sim)?;
        self.drain_stash_reinsert(sim)?;
        Ok(event)
    }

    /// Drain the overflow stash back into the subtables — called after any
    /// completed resize (a resize has just changed where keys belong or
    /// made room). Shared by the stop-the-world path and the migration
    /// finalize step.
    fn drain_stash_reinsert(&mut self, sim: &mut SimContext) -> Result<()> {
        if self.stash.as_ref().is_some_and(|s| !s.is_empty()) {
            let stash = self.stash.as_mut().expect("checked above");
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            let drained = stash.drain(&mut ctx);
            ctx.finish();
            let ops: Vec<InsertOp> = drained
                .into_iter()
                .map(|(k, v)| {
                    self.op_counter += 1;
                    InsertOp::reinsert(k, v, self.op_counter)
                })
                .collect();
            let out = run_insert(
                &mut self.tables,
                &self.shape,
                ops,
                None,
                None,
                &mut sim.metrics,
            );
            // Whatever still fails goes straight back to the stash (room is
            // guaranteed: we just drained it).
            if !out.failed.is_empty() {
                let stash = self.stash.as_mut().expect("still present");
                let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
                for op in &out.failed {
                    let ok = stash.push(op.key, op.val, &mut ctx);
                    debug_assert!(ok, "stash was just drained");
                }
                ctx.finish();
            }
        }
        Ok(())
    }

    fn apply_resize_inner(&mut self, op: ResizeOp, sim: &mut SimContext) -> Result<ResizeEvent> {
        match op {
            ResizeOp::Upsize(i) => {
                let old = self.tables[i].n_buckets();
                let rep = rehash::upsize(
                    &mut self.tables,
                    i,
                    &self.shape,
                    sim,
                    &mut self.ledger_bytes,
                )?;
                Ok(ResizeEvent {
                    op,
                    old_buckets: old,
                    new_buckets: old * 2,
                    moved: rep.moved,
                    residuals: 0,
                })
            }
            ResizeOp::Downsize(i) => {
                let old = self.tables[i].n_buckets();
                let (rep, residuals) =
                    rehash::downsize_collect(&mut self.tables, i, sim, &mut self.ledger_bytes)?;
                let n_res = residuals.len() as u64;
                if !residuals.is_empty() {
                    // Residuals go to their partner subtables; the
                    // downsizing table is excluded within this "kernel".
                    let out = run_insert(
                        &mut self.tables,
                        &self.shape,
                        residuals,
                        Some(i),
                        None,
                        &mut sim.metrics,
                    );
                    // Leftovers (pathological) are retried without the
                    // exclusion — the downsize itself has completed.
                    let mut leftovers = out.failed;
                    let mut guard = 0;
                    while !leftovers.is_empty() {
                        guard += 1;
                        if guard > MAX_INSERT_RETRIES {
                            return Err(Error::InsertStuck {
                                failed_ops: leftovers.len(),
                            });
                        }
                        let target = resize::upsize_candidate(&self.tables);
                        rehash::upsize(
                            &mut self.tables,
                            target,
                            &self.shape,
                            sim,
                            &mut self.ledger_bytes,
                        )?;
                        let retry: Vec<InsertOp> = leftovers
                            .iter()
                            .map(|f| {
                                self.op_counter += 1;
                                InsertOp::reinsert(f.key, f.val, self.op_counter)
                            })
                            .collect();
                        leftovers = run_insert(
                            &mut self.tables,
                            &self.shape,
                            retry,
                            None,
                            None,
                            &mut sim.metrics,
                        )
                        .failed;
                    }
                }
                Ok(ResizeEvent {
                    op,
                    old_buckets: old,
                    new_buckets: old / 2,
                    moved: rep.moved,
                    residuals: n_res,
                })
            }
        }
    }

    /// Force one resize operation regardless of θ (used by the F7 resize
    /// experiment, which measures a single upsize/downsize in isolation).
    /// Always stop-the-world; any in-flight migration is completed first
    /// (its finalizing [`ResizeEvent`] is not reported here).
    pub fn force_resize(&mut self, sim: &mut SimContext, op: ResizeOp) -> Result<ResizeEvent> {
        let mut scratch = BatchReport::default();
        self.finish_migration(sim, &mut scratch)?;
        let event = self.apply_resize(op, sim);
        self.debug_verify("force_resize");
        event
    }

    /// The *naive* alternative the paper's resize experiment compares
    /// against: resize subtable `idx` by draining all its entries and
    /// re-inserting them one by one through the normal insert kernel
    /// (Algorithm 1), instead of the conflict-free rehash. Returns the
    /// number of KVs moved.
    pub fn rehash_subtable_naive(
        &mut self,
        sim: &mut SimContext,
        idx: usize,
        grow: bool,
    ) -> Result<u64> {
        let mut scratch = BatchReport::default();
        self.finish_migration(sim, &mut scratch)?;
        let _attr = obs::attr::scope("maintenance/rehash");
        let layout = self.shape.cfg.layout;
        let old = &self.tables[idx];
        let old_buckets = old.n_buckets();
        let new_buckets = if grow {
            old_buckets * 2
        } else {
            (old_buckets / 2).max(1)
        };
        // Drain: read every key and value line of the subtable.
        sim.metrics.charge(
            ChargeKind::ReadTx,
            layout.drain_lines() * old_buckets as u64,
        );
        let drained: Vec<(u32, u32)> = old.iter_live().collect();
        let old_bytes = old.device_bytes();
        let new_bytes = layout.device_bytes_for(new_buckets);
        sim.device.alloc(new_bytes)?;
        self.ledger_bytes += new_bytes;
        self.tables[idx] = SubTable::new(new_buckets, layout);
        sim.device.free(old_bytes)?;
        self.ledger_bytes -= old_bytes;
        // Re-insert through the ordinary voter kernel: each key routes
        // through its two-layer pair (which contains `idx`), competing with
        // whatever is already in the partner subtables. The naive strategy
        // has no Theorem-1 steering (that is part of what it lacks), so
        // half the reinserts land in the other, possibly nearly full,
        // subtable — which is exactly why the paper finds naive upsizing
        // "severely limited".
        let naive_shape = TableShape {
            cfg: Config {
                distribution: crate::config::Distribution::Uniform,
                ..self.shape.cfg
            },
            pair: self.shape.pair,
            hashes: self.shape.hashes.clone(),
        };
        let moved = drained.len() as u64;
        let ops: Vec<InsertOp> = drained
            .into_iter()
            .map(|(k, v)| {
                self.op_counter += 1;
                InsertOp::fresh(k, v, self.op_counter)
            })
            .collect();
        let out = run_insert(
            &mut self.tables,
            &naive_shape,
            ops,
            None,
            None,
            &mut sim.metrics,
        );
        let mut report = BatchReport::default();
        self.retry_failed(sim, out, &mut report)?;
        Ok(moved)
    }

    /// The policy invariant: no subtable more than twice any other.
    pub fn size_ratio_ok(&self) -> bool {
        resize::size_ratio_invariant(&self.tables)
    }

    // ------------------------------------------------------------------
    // Incremental migration (finite `Config::migration_quantum`).
    // ------------------------------------------------------------------

    /// Whether a migration is in flight (draining or awaiting finalize).
    pub fn migration_in_flight(&self) -> bool {
        self.migration.in_flight()
    }

    /// Source buckets not yet drained plus the pending finalize step; 0
    /// when idle. Exported by the service layer as the `migration_backlog`
    /// gauge.
    pub fn migration_backlog(&self) -> u64 {
        self.migration.backlog()
    }

    /// Pump one migration quantum: drain up to `migration_quantum` source
    /// buckets, or perform the finalize swap if draining is complete. A
    /// no-op when no migration is in flight. The service layer calls this
    /// between flush windows to interleave structural work with traffic.
    pub fn migrate_quantum(
        &mut self,
        sim: &mut SimContext,
        report: &mut BatchReport,
    ) -> Result<()> {
        self.migrate_quantum_into(sim, report)?;
        self.debug_verify("migrate_quantum");
        Ok(())
    }

    /// [`Self::migrate_quantum`] without the batch-boundary verify (used
    /// inside batches, which verify at their own boundary).
    fn migrate_quantum_into(
        &mut self,
        sim: &mut SimContext,
        report: &mut BatchReport,
    ) -> Result<()> {
        match &self.migration {
            MigrationMachine::Idle => Ok(()),
            MigrationMachine::Draining(_) => {
                let quantum = self.shape.cfg.migration_quantum;
                let leftovers = self.migrate_chunk(sim, quantum, report)?;
                self.park_or_escalate(sim, leftovers, report)
            }
            MigrationMachine::Finalizing(_) => {
                let event = self.finalize_migration(sim)?;
                report.resizes.push(event);
                Ok(())
            }
        }
    }

    /// Run an in-flight migration to completion (drain + finalize). The
    /// correctness escape hatch for paths that need the table quiescent:
    /// stuck-insert recovery, [`Self::force_resize`] and the naive-rehash
    /// experiment.
    pub(super) fn finish_migration(
        &mut self,
        sim: &mut SimContext,
        report: &mut BatchReport,
    ) -> Result<()> {
        let mut pending = Vec::new();
        while let MigrationMachine::Draining(state) = &self.migration {
            let rest = state.span - state.cursor;
            pending.extend(self.migrate_chunk(sim, rest, report)?);
        }
        if matches!(self.migration, MigrationMachine::Finalizing(_)) {
            let event = self.finalize_migration(sim)?;
            report.resizes.push(event);
        }
        self.park_or_escalate(sim, pending, report)
    }

    /// Allocate the fresh subtable and enter the Draining state. The old
    /// subtable stays in place (and keeps serving routed operations) until
    /// the finalize swap.
    fn start_migration(&mut self, op: ResizeOp, sim: &mut SimContext) -> Result<()> {
        debug_assert!(
            !self.migration.in_flight(),
            "at most one migration in flight"
        );
        let (grow, idx) = match op {
            ResizeOp::Upsize(i) => (true, i),
            ResizeOp::Downsize(i) => (false, i),
        };
        let layout = self.shape.cfg.layout;
        let old_n = self.tables[idx].n_buckets();
        let new_n = if grow {
            old_n * 2
        } else {
            debug_assert!(
                old_n > 1 && old_n.is_multiple_of(2),
                "downsize needs an even size"
            );
            old_n / 2
        };
        let new_bytes = layout.device_bytes_for(new_n);
        sim.device.alloc(new_bytes)?;
        self.ledger_bytes += new_bytes;
        self.decision.record(grow);
        self.migration = MigrationMachine::Draining(DrainState {
            table: idx,
            grow,
            fresh: SubTable::new(new_n, layout),
            cursor: 0,
            // The cursor sweeps old buckets when growing, merged new
            // buckets when shrinking (each covering two old buckets).
            span: if grow { old_n } else { new_n },
            old_buckets: old_n,
            moved: 0,
            residuals: 0,
        });
        Ok(())
    }

    /// Drain one chunk of up to `budget` source buckets as a scheduled
    /// launch, place its residuals into partner subtables, and transition
    /// to Finalizing when the drain completes. Returns residual ops that
    /// fit neither the partners nor the stash (pathological; the caller
    /// escalates).
    fn migrate_chunk(
        &mut self,
        sim: &mut SimContext,
        budget: usize,
        report: &mut BatchReport,
    ) -> Result<Vec<InsertOp>> {
        let MigrationMachine::Draining(state) = &mut self.migration else {
            return Ok(Vec::new());
        };
        let idx = state.table;
        let rest = state.span - state.cursor;
        debug_assert!(rest > 0, "Draining implies undrained source buckets");
        let budget = budget.max(1).min(rest);
        let _attr = obs::attr::scope("maintenance/migrate");
        let recording = obs::is_enabled();
        if recording {
            obs::span_begin(obs::Event::MigrateChunkBegin {
                grow: state.grow,
                table: idx as u8,
                cursor: state.cursor as u64,
                chunk: budget as u64,
            });
        }
        let outcome = drain_chunk(
            state,
            &mut self.tables[idx],
            &self.shape.hashes[idx],
            budget,
            self.shape.cfg.schedule,
            &mut sim.metrics,
        );
        report.migrated_buckets += budget as u64;
        report.migrated_kvs += outcome.moved;
        let done = state.cursor == state.span;

        // Residuals (shrinking only) go to their partner subtables — the
        // draining table is excluded, exactly like the stop-the-world
        // downsize — while probing coherently through the migration view.
        let mut leftovers = Vec::new();
        if !outcome.residuals.is_empty() {
            let ops: Vec<InsertOp> = outcome
                .residuals
                .iter()
                .map(|&(k, v)| {
                    self.op_counter += 1;
                    InsertOp::reinsert(k, v, self.op_counter)
                })
                .collect();
            let MigrationMachine::Draining(state) = &mut self.migration else {
                unreachable!("checked above");
            };
            state.residuals += outcome.residuals.len() as u64;
            let view = state.view();
            let out = run_insert(
                &mut self.tables,
                &self.shape,
                ops,
                Some(idx),
                Some((view, &mut state.fresh)),
                &mut sim.metrics,
            );
            leftovers = out.failed;
        }
        let state = self.migration.state().expect("still in flight");
        if recording {
            obs::span_end(obs::Event::MigrateChunkEnd {
                moved: outcome.moved,
                residuals: outcome.residuals.len() as u64,
                backlog: (state.span - state.cursor) as u64 + 1,
            });
        }
        if done {
            let MigrationMachine::Draining(state) = std::mem::take(&mut self.migration) else {
                unreachable!("checked above");
            };
            self.migration = MigrationMachine::Finalizing(state);
        }
        Ok(leftovers)
    }

    /// Finalize: swap the fresh subtable in, free the old one, update the
    /// ledger and re-home the overflow stash. Returns the retired event.
    fn finalize_migration(&mut self, sim: &mut SimContext) -> Result<ResizeEvent> {
        let MigrationMachine::Finalizing(state) = std::mem::take(&mut self.migration) else {
            unreachable!("finalize called outside Finalizing");
        };
        let idx = state.table;
        debug_assert_eq!(
            self.tables[idx].occupied(),
            0,
            "old subtable fully drained before finalize"
        );
        let old_bytes = self.tables[idx].device_bytes();
        let new_buckets = state.fresh.n_buckets();
        self.tables[idx] = state.fresh;
        sim.device.free(old_bytes)?;
        self.ledger_bytes -= old_bytes;
        let event = ResizeEvent {
            op: if state.grow {
                ResizeOp::Upsize(idx)
            } else {
                ResizeOp::Downsize(idx)
            },
            old_buckets: state.old_buckets,
            new_buckets,
            moved: state.moved,
            residuals: state.residuals,
        };
        self.drain_stash_reinsert(sim)?;
        Ok(event)
    }

    /// Park chunk leftovers in the stash; if any remain, abandon
    /// incrementality (finish the migration) and run the same
    /// upsize-elsewhere-and-retry loop the stop-the-world downsize uses.
    fn park_or_escalate(
        &mut self,
        sim: &mut SimContext,
        mut leftovers: Vec<InsertOp>,
        report: &mut BatchReport,
    ) -> Result<()> {
        if leftovers.is_empty() {
            return Ok(());
        }
        if let Some(stash) = self.stash.as_mut() {
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            leftovers.retain(|op| !stash.push(op.key, op.val, &mut ctx));
            ctx.finish();
        }
        if leftovers.is_empty() {
            return Ok(());
        }
        self.finish_migration(sim, report)?;
        let mut guard = 0;
        while !leftovers.is_empty() {
            guard += 1;
            if guard > MAX_INSERT_RETRIES {
                return Err(Error::InsertStuck {
                    failed_ops: leftovers.len(),
                });
            }
            let target = resize::upsize_candidate(&self.tables);
            rehash::upsize(
                &mut self.tables,
                target,
                &self.shape,
                sim,
                &mut self.ledger_bytes,
            )?;
            let retry: Vec<InsertOp> = leftovers
                .iter()
                .map(|f| {
                    self.op_counter += 1;
                    InsertOp::reinsert(f.key, f.val, self.op_counter)
                })
                .collect();
            leftovers = run_insert(
                &mut self.tables,
                &self.shape,
                retry,
                None,
                None,
                &mut sim.metrics,
            )
            .failed;
        }
        Ok(())
    }
}
