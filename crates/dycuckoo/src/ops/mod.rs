//! Warp kernels for the three batched hash-table operations.
//!
//! Following the paper (and every GPU hash table it compares against),
//! operations arrive in batches of a single type. Each batch is packed into
//! warps of 32 operations; the warps are driven round-by-round by
//! [`gpu_sim::run_rounds`], which is where cross-warp lock contention and
//! its cost are modelled.

pub mod delete;
pub mod find;
pub mod insert;

use gpu_sim::WARP_SIZE;

/// Pack a batch of per-lane operations into warps of 32.
pub(crate) fn pack_warps<T>(ops: impl IntoIterator<Item = T>) -> Vec<Vec<T>> {
    let mut warps: Vec<Vec<T>> = Vec::new();
    let mut cur: Vec<T> = Vec::with_capacity(WARP_SIZE);
    for op in ops {
        cur.push(op);
        if cur.len() == WARP_SIZE {
            warps.push(std::mem::replace(&mut cur, Vec::with_capacity(WARP_SIZE)));
        }
    }
    if !cur.is_empty() {
        warps.push(cur);
    }
    warps
}

/// Index of the `n`-th set lane (mod the number of set lanes) — the voter
/// rotation used after a failed lock acquisition, so a warp never spins on
/// the same contended bucket.
pub(crate) fn nth_active_lane(mask: u32, n: usize) -> usize {
    let count = mask.count_ones() as usize;
    debug_assert!(count > 0);
    let target = n % count;
    let mut seen = 0;
    for lane in 0..WARP_SIZE {
        if mask & (1 << lane) != 0 {
            if seen == target {
                return lane;
            }
            seen += 1;
        }
    }
    unreachable!("mask had set bits");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_warps_chunks_by_32() {
        let warps = pack_warps(0..70);
        assert_eq!(warps.len(), 3);
        assert_eq!(warps[0].len(), 32);
        assert_eq!(warps[1].len(), 32);
        assert_eq!(warps[2].len(), 6);
        assert_eq!(warps[2], vec![64, 65, 66, 67, 68, 69]);
    }

    #[test]
    fn pack_warps_empty() {
        let warps: Vec<Vec<u32>> = pack_warps(std::iter::empty());
        assert!(warps.is_empty());
    }

    #[test]
    fn nth_active_rotates_through_set_lanes() {
        let mask = 0b1010_0100u32; // lanes 2, 5, 7
        assert_eq!(nth_active_lane(mask, 0), 2);
        assert_eq!(nth_active_lane(mask, 1), 5);
        assert_eq!(nth_active_lane(mask, 2), 7);
        assert_eq!(nth_active_lane(mask, 3), 2); // wraps
    }
}
