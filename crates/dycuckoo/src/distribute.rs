//! KV distribution (Theorem 1): steer inserts and evictions toward the
//! subtable that minimizes expected conflicts.
//!
//! The paper shows amortized insertion conflicts are minimized when
//! `C(m_i,2)/n_i` is equal across subtables, and realizes this with a
//! randomized assignment: a KV is sent to subtable `i` with probability
//! proportional to `n_i / C(m_i, 2)`. After an upsize doubles `n_i`, the
//! same rule automatically doubles table `i`'s share of subsequent inserts,
//! pulling the system back toward balance.

use gpu_sim::engine::{rotated_index, weighted_index};

use crate::config::Distribution;
use crate::hashfn::splitmix64;
use crate::subtable::SubTable;

/// Theorem-1 weight from raw capacity/occupancy numbers: `n_i / C(m_i,
/// 2)`, with `C(m,2) < 1` clamped so empty tables get a very large (but
/// finite) weight. Backend-generic: the sim backend reads a
/// [`SubTable`], the host-par backend reads its striped store's relaxed
/// occupancy counter — both feed this one formula.
#[inline]
pub fn weight_of(capacity_slots: u64, occupied: u64) -> f64 {
    let m = occupied as f64;
    let pairs = (m * (m - 1.0) / 2.0).max(1.0);
    capacity_slots as f64 / pairs
}

/// Theorem-1 weight of a subtable: `n_i / C(m_i, 2)`.
#[inline]
pub fn weight(table: &SubTable) -> f64 {
    weight_of(table.capacity_slots(), table.occupied())
}

/// Backend-generic candidate choice: like [`choose_among`] but reading
/// subtable weights through a closure, so callers that do not hold
/// `&[SubTable]` (the host-par backend's striped stores) steer with the
/// identical coin and sampling rule. Deterministic given
/// `(seed, key, salt)` and the weights.
pub fn choose_among_by(
    dist: Distribution,
    weight_at: impl Fn(usize) -> f64,
    candidates: &[usize],
    seed: u64,
    key: u32,
    salt: u64,
) -> usize {
    debug_assert!(!candidates.is_empty());
    let coin = splitmix64(seed ^ ((key as u64) << 17) ^ salt);
    match dist {
        Distribution::Uniform => candidates[(coin % candidates.len() as u64) as usize],
        Distribution::Balanced => {
            let weights: Vec<f64> = candidates.iter().map(|&c| weight_at(c)).collect();
            let i = weighted_index(&weights, coin).expect("Theorem-1 weights are positive");
            candidates[i]
        }
    }
}

/// Choose among candidate subtables for a fresh insert. Deterministic
/// given `(seed, key, salt)`, so batches replay identically.
pub fn choose_among(
    dist: Distribution,
    tables: &[SubTable],
    candidates: &[usize],
    seed: u64,
    key: u32,
    salt: u64,
) -> usize {
    choose_among_by(dist, |c| weight(&tables[c]), candidates, seed, key, salt)
}

/// Choose between the two subtables of a first-layer pair for a fresh
/// insert (the common two-layer case).
pub fn choose_target(
    dist: Distribution,
    tables: &[SubTable],
    (i, j): (usize, usize),
    seed: u64,
    key: u32,
    salt: u64,
) -> usize {
    choose_among(dist, tables, &[i, j], seed, key, salt)
}

/// Choose an eviction victim among the slots of a full bucket.
///
/// `partner_of(slot)` yields the subtable the slot's occupant would move to
/// (the other member of the occupant's pair), or `None` if that slot must
/// not be chosen (its partner is excluded, e.g. a subtable being downsized).
/// Under [`Distribution::Balanced`] a victim is sampled with probability
/// proportional to its destination's Theorem-1 weight — *randomized*
/// steering, because a deterministic argmax revisits the same slots and
/// lets eviction chains cycle. Under [`Distribution::Uniform`] a
/// deterministic pseudo-random admissible slot is picked.
pub fn choose_victim(
    dist: Distribution,
    tables: &[SubTable],
    partner_of: impl Fn(usize) -> Option<usize>,
    n_slots: usize,
    seed: u64,
    salt: u64,
) -> Option<usize> {
    let coin = splitmix64(seed ^ salt.rotate_left(17) ^ 0xB10C_B10C);
    match dist {
        Distribution::Balanced => {
            // Weight the admissible slots by their destination's Theorem-1
            // weight, then sample via the engine's shared selector
            // (inadmissible slots carry zero weight).
            let mut weights = [0.0f64; 64];
            for (s, slot_weight) in weights.iter_mut().enumerate().take(n_slots.min(64)) {
                if let Some(p) = partner_of(s) {
                    *slot_weight = weight(&tables[p]);
                }
            }
            weighted_index(&weights[..n_slots.min(64)], coin)
        }
        Distribution::Uniform => rotated_index(n_slots, |s| partner_of(s).is_some(), coin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BUCKET_SLOTS;

    fn table_with(n_buckets: usize, filled: u64) -> SubTable {
        let mut t = SubTable::new(n_buckets, gpu_sim::LayoutConfig::default());
        let mut written = 0;
        'outer: for b in 0..n_buckets {
            for _ in 0..BUCKET_SLOTS {
                if written == filled {
                    break 'outer;
                }
                let s = t.find_empty(b).unwrap();
                t.write_new(b, s, written as u32 + 1, 0);
                written += 1;
            }
        }
        t
    }

    #[test]
    fn weight_prefers_emptier_tables_of_equal_size() {
        let nearly_empty = table_with(4, 2);
        let fuller = table_with(4, 100);
        assert!(weight(&nearly_empty) > weight(&fuller));
    }

    #[test]
    fn weight_prefers_larger_table_at_equal_occupancy() {
        let small = table_with(2, 50);
        let large = table_with(4, 50);
        assert!(weight(&large) > weight(&small));
    }

    #[test]
    fn balanced_choice_strongly_favors_empty_table() {
        let tables = vec![table_with(4, 120), table_with(4, 0)];
        let mut picked_empty = 0;
        for k in 1..=1000u32 {
            let c = choose_target(Distribution::Balanced, &tables, (0, 1), 42, k, 0);
            if c == 1 {
                picked_empty += 1;
            }
        }
        assert!(
            picked_empty > 990,
            "only {picked_empty}/1000 picks went to the empty table"
        );
    }

    #[test]
    fn uniform_choice_is_roughly_even() {
        let tables = vec![table_with(4, 120), table_with(4, 0)];
        let ones: usize = (1..=2000u32)
            .filter(|&k| choose_target(Distribution::Uniform, &tables, (0, 1), 1, k, 0) == 1)
            .count();
        assert!((800..1200).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn choice_is_deterministic() {
        let tables = vec![table_with(4, 10), table_with(4, 20)];
        for k in 1..50u32 {
            let a = choose_target(Distribution::Balanced, &tables, (0, 1), 9, k, 3);
            let b = choose_target(Distribution::Balanced, &tables, (0, 1), 9, k, 3);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn victim_respects_exclusions() {
        let tables = vec![table_with(2, 0), table_with(2, 0), table_with(2, 0)];
        // Slots 0..16 have partner 1 (excluded), the rest partner 2.
        let picked = choose_victim(
            Distribution::Balanced,
            &tables,
            |s| if s < 16 { None } else { Some(2) },
            32,
            0,
            0,
        )
        .unwrap();
        assert!(picked >= 16);
    }

    #[test]
    fn victim_none_when_all_excluded() {
        let tables = vec![table_with(2, 0)];
        let picked = choose_victim(Distribution::Uniform, &tables, |_| None, 32, 0, 0);
        assert_eq!(picked, None);
    }

    #[test]
    fn balanced_victim_prefers_emptiest_destination() {
        let tables = vec![table_with(4, 120), table_with(4, 3), table_with(4, 60)];
        // Even slots go to table 1 (almost empty), odd to table 2 (half
        // full): sampling ∝ weight must overwhelmingly pick even slots.
        let even = (0..500u64)
            .filter(|&salt| {
                let picked = choose_victim(
                    Distribution::Balanced,
                    &tables,
                    |s| Some(if s % 2 == 0 { 1 } else { 2 }),
                    32,
                    0,
                    salt,
                )
                .unwrap();
                picked % 2 == 0
            })
            .count();
        assert!(even > 450, "only {even}/500 picks went to the light table");
    }

    #[test]
    fn balanced_victim_varies_with_salt() {
        // The randomized steering must not fixate on one slot (that is what
        // caused eviction ping-pong cycles with an argmax rule).
        let tables = vec![table_with(4, 10), table_with(4, 10)];
        let picks: std::collections::HashSet<usize> = (0..100u64)
            .map(|salt| {
                choose_victim(Distribution::Balanced, &tables, |_| Some(1), 32, 0, salt).unwrap()
            })
            .collect();
        assert!(picks.len() > 10, "only {} distinct victims", picks.len());
    }
}
