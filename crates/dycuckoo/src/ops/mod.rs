//! Warp kernels for the three batched hash-table operations.
//!
//! Following the paper (and every GPU hash table it compares against),
//! operations arrive in batches of a single type. Each batch is packed into
//! warps of 32 operations; the warps are driven round-by-round by
//! [`gpu_sim::run_rounds`], which is where cross-warp lock contention and
//! its cost are modelled.
//!
//! Warp packing and the voter rotation live in the shared probe engine
//! ([`gpu_sim::engine::probe`]); the kernels here re-export them, and all
//! per-bucket transaction charging flows through the configured
//! [`gpu_sim::LayoutConfig`].

pub mod delete;
pub mod find;
pub mod insert;

pub(crate) use gpu_sim::engine::{nth_active_lane, pack_warps};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_warps_chunks_by_32() {
        let warps = pack_warps(0..70);
        assert_eq!(warps.len(), 3);
        assert_eq!(warps[0].len(), 32);
        assert_eq!(warps[1].len(), 32);
        assert_eq!(warps[2].len(), 6);
        assert_eq!(warps[2], vec![64, 65, 66, 67, 68, 69]);
    }

    #[test]
    fn nth_active_rotates_through_set_lanes() {
        let mask = 0b1010_0100u32; // lanes 2, 5, 7
        assert_eq!(nth_active_lane(mask, 0), 2);
        assert_eq!(nth_active_lane(mask, 1), 5);
        assert_eq!(nth_active_lane(mask, 2), 7);
        assert_eq!(nth_active_lane(mask, 3), 2); // wraps
    }
}
