//! Resize policy (Section "Structure Resizing").
//!
//! When the overall filled factor θ leaves `[α, β]`, exactly **one**
//! subtable is resized: the smallest is doubled for upsizing, the largest is
//! halved for downsizing. Only that subtable is locked; the others keep
//! serving operations. The policy maintains the invariant that no subtable
//! is more than twice the size of any other.

use crate::subtable::SubTable;

/// A single resize decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeOp {
    /// Double the subtable at this index.
    Upsize(usize),
    /// Halve the subtable at this index.
    Downsize(usize),
}

/// Overall filled factor `θ = Σm_i / Σn_i`.
pub fn overall_fill(tables: &[SubTable]) -> f64 {
    let m: u64 = tables.iter().map(|t| t.occupied()).sum();
    let n: u64 = tables.iter().map(|t| t.capacity_slots()).sum();
    if n == 0 {
        0.0
    } else {
        m as f64 / n as f64
    }
}

/// Index of the subtable to upsize: the smallest, breaking ties toward the
/// fullest (it benefits most) and then the lowest index (determinism).
pub fn upsize_candidate(tables: &[SubTable]) -> usize {
    (0..tables.len())
        .min_by_key(|&i| (tables[i].n_buckets(), u64::MAX - tables[i].occupied(), i))
        .expect("at least one subtable")
}

/// Index of the subtable to downsize: the largest whose bucket count can be
/// halved cleanly (even, > 1), breaking ties toward the emptiest (cheapest
/// merge, fewest residuals) and then the lowest index. `None` when no
/// subtable can shrink further.
pub fn downsize_candidate(tables: &[SubTable]) -> Option<usize> {
    (0..tables.len())
        .filter(|&i| tables[i].n_buckets() > 1 && tables[i].n_buckets().is_multiple_of(2))
        .max_by_key(|&i| {
            (
                tables[i].n_buckets(),
                u64::MAX - tables[i].occupied(),
                usize::MAX - i,
            )
        })
}

/// Which resize directions a rebalancing pass may take. Insert batches
/// only grow (θ is rising; shrinking mid-load would churn), delete batches
/// may do both (residual re-insertion during downsizing can push θ up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Only upsizes (the insert path).
    GrowOnly,
    /// Upsizes and downsizes (the delete path).
    Both,
}

/// Decide whether a resize is needed to bring θ back inside `[alpha, beta]`.
///
/// Downsizing stops at single-bucket subtables; an empty table simply stays
/// at its minimum footprint.
pub fn decide(tables: &[SubTable], alpha: f64, beta: f64, dir: Direction) -> Option<ResizeOp> {
    let theta = overall_fill(tables);
    if theta > beta {
        return Some(ResizeOp::Upsize(upsize_candidate(tables)));
    }
    if dir == Direction::Both && theta < alpha {
        if let Some(cand) = downsize_candidate(tables) {
            return Some(ResizeOp::Downsize(cand));
        }
    }
    None
}

/// Stateful resize hysteresis: suppresses a resize whose direction is
/// opposite to the most recent one until `cooldown` batches have passed.
///
/// When θ oscillates around α or β (a workload alternating inserts and
/// deletes right at a bound), the memoryless [`decide`] would upsize and
/// downsize the same subtable back and forth, paying a full rehash each
/// time. The cooldown breaks that thrash: after an upsize, downsizes are
/// ignored for `cooldown` batches (and vice versa), letting θ drift with
/// the workload instead of chasing it. Same-direction resizes are never
/// suppressed — a genuinely filling table must still grow immediately.
///
/// `cooldown = 0` (the [`crate::Config`] default) reproduces the
/// memoryless policy exactly.
#[derive(Debug, Clone)]
pub struct Decision {
    cooldown: u32,
    /// Direction of the last applied resize and the number of batches
    /// completed since, saturating. `None` until the first resize.
    last: Option<(bool, u32)>,
}

impl Decision {
    /// A hysteresis state with the given cooldown (in batches).
    pub fn new(cooldown: u32) -> Self {
        Self {
            cooldown,
            last: None,
        }
    }

    /// Advance the batch clock; call once per public batch operation.
    pub fn note_batch(&mut self) {
        if let Some((_, since)) = &mut self.last {
            *since = since.saturating_add(1);
        }
    }

    /// Record an applied resize (including forced ones) so opposite-direction
    /// decisions start their cooldown from it.
    pub fn record(&mut self, grow: bool) {
        self.last = Some((grow, 0));
    }

    /// Whether a resize in direction `grow` is currently admissible.
    pub fn allows(&self, grow: bool) -> bool {
        match self.last {
            Some((last_grow, since)) if last_grow != grow => since >= self.cooldown,
            _ => true,
        }
    }

    /// [`decide`] filtered through the hysteresis: a direction flip within
    /// the cooldown yields `None` (no resize) instead of thrash.
    pub fn decide(
        &self,
        tables: &[SubTable],
        alpha: f64,
        beta: f64,
        dir: Direction,
    ) -> Option<ResizeOp> {
        let op = decide(tables, alpha, beta, dir)?;
        let grow = matches!(op, ResizeOp::Upsize(_));
        self.allows(grow).then_some(op)
    }
}

/// The structural invariant of the policy: max subtable size ≤ 2 × min.
pub fn size_ratio_invariant(tables: &[SubTable]) -> bool {
    let min = tables.iter().map(|t| t.n_buckets()).min().unwrap_or(1);
    let max = tables.iter().map(|t| t.n_buckets()).max().unwrap_or(1);
    max <= 2 * min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BUCKET_SLOTS;

    fn table(n_buckets: usize, filled: u64) -> SubTable {
        let mut t = SubTable::new(n_buckets, gpu_sim::LayoutConfig::default());
        let mut written = 0;
        'outer: for b in 0..n_buckets {
            for _ in 0..BUCKET_SLOTS {
                if written == filled {
                    break 'outer;
                }
                let s = t.find_empty(b).unwrap();
                t.write_new(b, s, written as u32 + 1, 0);
                written += 1;
            }
        }
        t
    }

    #[test]
    fn overall_fill_weights_by_capacity() {
        let tables = vec![table(2, 32), table(2, 0)];
        assert!((overall_fill(&tables) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn decide_upsizes_smallest_when_over_beta() {
        let tables = vec![table(4, 120), table(2, 60), table(4, 120)];
        // θ = 300/320 ≈ 0.94 > 0.85.
        assert_eq!(
            decide(&tables, 0.3, 0.85, Direction::Both),
            Some(ResizeOp::Upsize(1))
        );
        // Growing is allowed in both directions' modes.
        assert_eq!(
            decide(&tables, 0.3, 0.85, Direction::GrowOnly),
            Some(ResizeOp::Upsize(1))
        );
    }

    #[test]
    fn decide_downsizes_largest_when_under_alpha() {
        let tables = vec![table(4, 10), table(2, 10), table(2, 10)];
        // θ = 30/256 ≈ 0.12 < 0.3.
        assert_eq!(
            decide(&tables, 0.3, 0.85, Direction::Both),
            Some(ResizeOp::Downsize(0))
        );
        // The insert path never shrinks mid-batch.
        assert_eq!(decide(&tables, 0.3, 0.85, Direction::GrowOnly), None);
    }

    #[test]
    fn decide_none_in_range() {
        let tables = vec![table(2, 40), table(2, 40)];
        // θ = 80/128 = 0.625.
        assert_eq!(decide(&tables, 0.3, 0.85, Direction::Both), None);
    }

    #[test]
    fn no_downsize_below_one_bucket() {
        let tables = vec![table(1, 0), table(1, 0)];
        assert_eq!(decide(&tables, 0.3, 0.85, Direction::Both), None);
    }

    #[test]
    fn upsize_tie_break_prefers_fullest() {
        let tables = vec![table(2, 10), table(2, 60), table(2, 30)];
        assert_eq!(upsize_candidate(&tables), 1);
    }

    #[test]
    fn downsize_tie_break_prefers_emptiest() {
        let tables = vec![table(4, 100), table(4, 5), table(2, 0)];
        assert_eq!(downsize_candidate(&tables), Some(1));
    }

    #[test]
    fn downsize_skips_odd_sized_tables() {
        let tables = vec![table(5, 0), table(4, 0)];
        assert_eq!(downsize_candidate(&tables), Some(1));
        let tables = vec![table(1, 0), table(1, 0)];
        assert_eq!(downsize_candidate(&tables), None);
    }

    #[test]
    fn size_ratio_invariant_detects_violations() {
        assert!(size_ratio_invariant(&[table(2, 0), table(4, 0)]));
        assert!(!size_ratio_invariant(&[table(2, 0), table(8, 0)]));
    }

    #[test]
    fn zero_cooldown_reproduces_memoryless_policy() {
        let mut d = Decision::new(0);
        let over = vec![table(4, 120), table(2, 60), table(4, 120)];
        let under = vec![table(4, 10), table(2, 10), table(2, 10)];
        for _ in 0..3 {
            assert_eq!(
                d.decide(&over, 0.3, 0.85, Direction::Both),
                decide(&over, 0.3, 0.85, Direction::Both)
            );
            d.record(true);
            assert_eq!(
                d.decide(&under, 0.3, 0.85, Direction::Both),
                decide(&under, 0.3, 0.85, Direction::Both)
            );
            d.record(false);
            d.note_batch();
        }
    }

    /// Pins the hysteresis sequence for θ oscillating around the bounds:
    /// one upsize, then the opposite-direction downsize is suppressed for
    /// exactly `cooldown` batches, then admitted; same-direction resizes
    /// are never suppressed.
    #[test]
    fn cooldown_suppresses_direction_thrash() {
        let over = vec![table(4, 120), table(2, 60), table(4, 120)]; // θ > β
        let under = vec![table(4, 10), table(2, 10), table(2, 10)]; // θ < α
        let mut d = Decision::new(3);

        // Batch 0: θ > β → upsize fires and is recorded.
        assert_eq!(
            d.decide(&over, 0.3, 0.85, Direction::Both),
            Some(ResizeOp::Upsize(1))
        );
        d.record(true);

        // Batches 1..=3: θ < α, but the downsize is inside the cooldown.
        let mut observed = Vec::new();
        for _ in 0..4 {
            d.note_batch();
            observed.push(d.decide(&under, 0.3, 0.85, Direction::Both));
        }
        assert_eq!(
            observed,
            vec![
                None,
                None,
                Some(ResizeOp::Downsize(0)),
                Some(ResizeOp::Downsize(0))
            ],
            "downsize admitted only once cooldown batches have passed"
        );

        // Same-direction pressure is never suppressed, even inside a fresh
        // cooldown window.
        d.record(false);
        assert_eq!(
            d.decide(&under, 0.3, 0.85, Direction::Both),
            Some(ResizeOp::Downsize(0))
        );
        // And the flip back up is again suppressed until its own cooldown.
        assert_eq!(d.decide(&over, 0.3, 0.85, Direction::Both), None);
        for _ in 0..3 {
            d.note_batch();
        }
        assert_eq!(
            d.decide(&over, 0.3, 0.85, Direction::Both),
            Some(ResizeOp::Upsize(1))
        );
    }
}
