//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace must build offline (no registry), so the real criterion
//! cannot be resolved. This shim keeps `cargo bench` working with the same
//! bench sources: it runs each benchmark `sample_size` times after one
//! warm-up iteration, and reports the mean, min, and max wall-clock time
//! per iteration (plus element throughput where declared). No statistics
//! beyond that — it is a regression smoke harness, not an estimator.

use std::fmt::Display;
use std::time::Instant;

/// Re-export matching criterion's helper.
pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// No-op CLI-compat shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            sample_size: self.sample_size,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, None, f);
        self
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, self.throughput, f);
        self
    }

    /// Finish the group (presentation only).
    pub fn finish(self) {}
}

/// Benchmark identifier (criterion's parameterized naming).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to each benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f` over the configured number of samples (plus one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn run_bench<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{name}: no samples (closure never called iter)");
        return;
    }
    let n = b.samples_ns.len() as f64;
    let mean = b.samples_ns.iter().sum::<f64>() / n;
    let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples_ns.iter().cloned().fold(0.0f64, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(e)) if mean > 0.0 => {
            format!("  {:>10.2} Melem/s", e as f64 / mean * 1e3)
        }
        Some(Throughput::Bytes(by)) if mean > 0.0 => {
            format!("  {:>10.2} MB/s", by as f64 / mean * 1e3)
        }
        _ => String::new(),
    };
    println!(
        "{name}: mean {:>10.3} ms  [min {:.3}, max {:.3}]  ({} samples){rate}",
        mean / 1e6,
        min / 1e6,
        max / 1e6,
        b.samples_ns.len()
    );
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function(BenchmarkId::from_parameter("id-form"), |b| {
            b.iter(|| black_box(42))
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
