//! Value-generation strategies: the (shrink-free) core of the shim.

use crate::TestRng;

/// A recipe for generating values of one type from a [`TestRng`].
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`: `any::<u32>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}
signed_range_strategy!(i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Weighted union of boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof needs positive total weight");
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_generation_covers_domain() {
        let mut rng = TestRng::for_case("range", 0);
        let s = 3u32..7;
        let mut seen = [false; 10];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen[3..7].iter().all(|&b| b));
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = TestRng::for_case("full", 0);
        let s = 1u64..u64::MAX;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..u64::MAX).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::for_case("union", 0);
        let u = Union::new(vec![
            (3u32, Box::new(Just(0u32)) as Box<dyn Strategy<Value = u32>>),
            (1u32, Box::new(Just(1u32))),
        ]);
        let mut ones = 0;
        for _ in 0..1000 {
            ones += u.generate(&mut rng);
        }
        assert!(ones > 150 && ones < 350, "got {ones} ones in 1000 draws");
    }
}
