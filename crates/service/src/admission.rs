//! Admission control: bounded queues, backpressure, and load shedding.
//!
//! Every shard queue is hard-bounded, so offered load beyond capacity
//! produces typed rejections instead of unbounded queue growth:
//!
//! * above the **hard cap** every request is rejected with
//!   [`AdmitError::Overloaded`];
//! * above the **shed watermark** (graceful-degradation band) reads are
//!   rejected with [`AdmitError::Shed`] while writes are still admitted —
//!   a read can be retried against a cache or replica, whereas a dropped
//!   write is lost data.
//!
//! Both errors carry the shard and its depth so clients can back off
//! proportionally (the backpressure signal is [`AdmissionPolicy::pressure`]).

use crate::request::Op;

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Key 0 is reserved by the underlying tables as the empty sentinel.
    ZeroKey,
    /// The shard's queue is at its hard capacity; nothing is admitted.
    Overloaded {
        /// The refusing shard.
        shard: usize,
        /// Queue depth at refusal time.
        depth: usize,
        /// The hard bound.
        capacity: usize,
    },
    /// The shard is above its shed watermark; reads are dropped to keep
    /// headroom for writes (graceful degradation).
    Shed {
        /// The refusing shard.
        shard: usize,
        /// Queue depth at refusal time.
        depth: usize,
        /// The soft bound that was crossed.
        watermark: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::ZeroKey => write!(f, "key 0 is reserved"),
            AdmitError::Overloaded {
                shard,
                depth,
                capacity,
            } => write!(f, "shard {shard} overloaded: queue {depth}/{capacity}"),
            AdmitError::Shed {
                shard,
                depth,
                watermark,
            } => write!(
                f,
                "shard {shard} shedding reads: queue {depth} above watermark {watermark}"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Per-shard admission bounds.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Hard bound on queued requests per shard.
    pub queue_capacity: usize,
    /// Soft bound above which reads are shed.
    pub shed_watermark: usize,
}

impl AdmissionPolicy {
    /// Check the bounds are coherent.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be positive".to_string());
        }
        if self.shed_watermark == 0 || self.shed_watermark > self.queue_capacity {
            return Err(format!(
                "shed_watermark must lie in 1..={}, got {}",
                self.queue_capacity, self.shed_watermark
            ));
        }
        Ok(())
    }

    /// Decide admission for `op` given the shard's current queue `depth`.
    pub fn admit(&self, shard: usize, depth: usize, op: &Op) -> Result<(), AdmitError> {
        if op.key() == 0 {
            return Err(AdmitError::ZeroKey);
        }
        self.admit_depth(shard, depth, op.is_read())
    }

    /// The depth-only half of [`AdmissionPolicy::admit`]: byte-string keys
    /// have no reserved sentinel, so the unsized tier's admission is just
    /// the queue bounds.
    pub fn admit_depth(&self, shard: usize, depth: usize, is_read: bool) -> Result<(), AdmitError> {
        if depth >= self.queue_capacity {
            return Err(AdmitError::Overloaded {
                shard,
                depth,
                capacity: self.queue_capacity,
            });
        }
        if depth >= self.shed_watermark && is_read {
            return Err(AdmitError::Shed {
                shard,
                depth,
                watermark: self.shed_watermark,
            });
        }
        Ok(())
    }

    /// Backpressure signal in `[0, 1]`: how full the shard's queue is.
    ///
    /// Always a finite value in `[0, 1]`: a zero-capacity policy (invalid
    /// per [`AdmissionPolicy::validate`], but constructible) reports full
    /// pressure rather than dividing by zero into NaN, and depths beyond
    /// capacity clamp to 1.
    pub fn pressure(&self, depth: usize) -> f64 {
        if self.queue_capacity == 0 {
            return 1.0;
        }
        (depth as f64 / self.queue_capacity as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AdmissionPolicy {
        AdmissionPolicy {
            queue_capacity: 8,
            shed_watermark: 6,
        }
    }

    #[test]
    fn validates_bounds() {
        policy().validate().unwrap();
        assert!(AdmissionPolicy {
            queue_capacity: 0,
            shed_watermark: 1
        }
        .validate()
        .is_err());
        assert!(AdmissionPolicy {
            queue_capacity: 4,
            shed_watermark: 5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn admits_below_watermark() {
        let p = policy();
        for depth in 0..6 {
            assert!(p.admit(0, depth, &Op::Get(1)).is_ok());
            assert!(p.admit(0, depth, &Op::Put(1, 2)).is_ok());
        }
    }

    #[test]
    fn sheds_reads_between_watermark_and_cap() {
        let p = policy();
        for depth in 6..8 {
            assert!(matches!(
                p.admit(3, depth, &Op::Get(1)),
                Err(AdmitError::Shed { shard: 3, .. })
            ));
            assert!(
                p.admit(3, depth, &Op::Put(1, 2)).is_ok(),
                "writes still admitted"
            );
            assert!(p.admit(3, depth, &Op::Delete(1)).is_ok());
        }
    }

    #[test]
    fn rejects_everything_at_capacity() {
        let p = policy();
        for op in [Op::Get(1), Op::Put(1, 2), Op::Delete(1)] {
            assert!(matches!(
                p.admit(1, 8, &op),
                Err(AdmitError::Overloaded {
                    shard: 1,
                    depth: 8,
                    capacity: 8
                })
            ));
        }
    }

    #[test]
    fn zero_key_rejected_before_anything_else() {
        assert_eq!(policy().admit(0, 0, &Op::Get(0)), Err(AdmitError::ZeroKey));
    }

    #[test]
    fn depth_only_admission_has_no_key_sentinel() {
        let p = policy();
        // Same bounds as the keyed path...
        assert!(p.admit_depth(0, 0, true).is_ok());
        assert!(matches!(
            p.admit_depth(2, 6, true),
            Err(AdmitError::Shed { shard: 2, .. })
        ));
        assert!(p.admit_depth(2, 6, false).is_ok());
        assert!(matches!(
            p.admit_depth(2, 8, false),
            Err(AdmitError::Overloaded { shard: 2, .. })
        ));
    }

    #[test]
    fn pressure_is_fill_fraction() {
        let p = policy();
        assert_eq!(p.pressure(0), 0.0);
        assert_eq!(p.pressure(4), 0.5);
        assert_eq!(p.pressure(8), 1.0);
    }

    #[test]
    fn pressure_is_always_finite_and_bounded() {
        // Zero capacity is rejected by validate()...
        let degenerate = AdmissionPolicy {
            queue_capacity: 0,
            shed_watermark: 1,
        };
        assert!(degenerate.validate().is_err());
        // ...but if constructed anyway, pressure must not be NaN: a
        // zero-capacity queue is saturated by definition.
        for depth in [0, 1, 100] {
            let p = degenerate.pressure(depth);
            assert!(p.is_finite());
            assert_eq!(p, 1.0);
        }
        // Depths beyond capacity clamp into [0, 1].
        assert_eq!(policy().pressure(1000), 1.0);
    }
}
