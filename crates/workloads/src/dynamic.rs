//! Dynamic workload construction (Section "Dynamic Hashing Comparison").
//!
//! The paper's protocol: partition a dataset into batches of `batch_size`
//! insertions; augment each batch with `batch_size` find operations and
//! `r · batch_size` delete operations (targeting previously inserted keys).
//! After the dataset is exhausted, **rerun the batches with insert and
//! delete swapped**, so the table grows through phase 1 and shrinks through
//! phase 2 — the sawtooth that drives every resize strategy.

use crate::datasets::Dataset;
use crate::mix64;

/// One batch of single-type operation groups, executed in order:
/// inserts, then finds, then deletes.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// KV pairs to insert.
    pub inserts: Vec<(u32, u32)>,
    /// Keys to look up.
    pub finds: Vec<u32>,
    /// Keys to delete.
    pub deletes: Vec<u32>,
}

impl Batch {
    /// Total operations in the batch.
    pub fn ops(&self) -> usize {
        self.inserts.len() + self.finds.len() + self.deletes.len()
    }
}

/// A full two-phase dynamic workload.
#[derive(Debug, Clone)]
pub struct DynamicWorkload {
    /// The batches, phase 1 (growing) followed by phase 2 (shrinking).
    pub batches: Vec<Batch>,
    /// Number of phase-1 batches (the growth phase prefix).
    pub phase1_len: usize,
}

impl DynamicWorkload {
    /// Total operations across all batches.
    pub fn total_ops(&self) -> usize {
        self.batches.iter().map(Batch::ops).sum()
    }

    /// Build the paper's workload from a dataset.
    ///
    /// * `batch_size` — insertions per batch (the paper's default is 1e6 on
    ///   the full-size datasets; scale accordingly).
    /// * `r` — deletions per insertion (the paper sweeps 0.1–0.5).
    /// * `seed` — determinism source for sampling finds and deletes.
    pub fn build(dataset: &Dataset, batch_size: usize, r: f64, seed: u64) -> Self {
        assert!(batch_size > 0);
        assert!((0.0..=1.0).contains(&r));
        let deletes_per_batch = ((batch_size as f64 * r).round() as usize).min(batch_size);

        let mut batches: Vec<Batch> = Vec::new();
        // Keys inserted so far and not yet deleted (phase-1 bookkeeping).
        // The set mirrors the pool so duplicate occurrences in the stream
        // (updates) do not enter the pool twice.
        let mut live_pool: Vec<u32> = Vec::new();
        let mut live_set: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut rng = seed;
        let mut next_rand = |bound: usize| -> usize {
            rng = mix64(rng);
            (rng % bound.max(1) as u64) as usize
        };

        for chunk in dataset.pairs.chunks(batch_size) {
            let inserts = chunk.to_vec();
            for &(k, _) in chunk {
                if live_set.insert(k) {
                    live_pool.push(k);
                }
            }
            // Finds target the live population (hit-heavy, like the paper's
            // random search queries over inserted data).
            let finds: Vec<u32> = (0..chunk.len())
                .map(|_| live_pool[next_rand(live_pool.len())])
                .collect();
            // Deletes sample *without replacement* from the live pool, so
            // they hit keys that are actually present.
            let n_del = deletes_per_batch.min(live_pool.len());
            let mut deletes = Vec::with_capacity(n_del);
            for _ in 0..n_del {
                let idx = next_rand(live_pool.len());
                let k = live_pool.swap_remove(idx);
                live_set.remove(&k);
                deletes.push(k);
            }
            batches.push(Batch {
                inserts,
                finds,
                deletes,
            });
        }

        let phase1_len = batches.len();
        // Phase 2: rerun with insert and delete swapped. Batch j deletes
        // what phase-1 batch j inserted and re-inserts what it deleted.
        let mut phase2: Vec<Batch> = Vec::with_capacity(phase1_len);
        for b in &batches {
            let inserts: Vec<(u32, u32)> = b
                .deletes
                .iter()
                .map(|&k| (k, k.wrapping_mul(0x85EB_CA6B)))
                .collect();
            let deletes: Vec<u32> = b.inserts.iter().map(|&(k, _)| k).collect();
            let finds = b.finds.clone();
            phase2.push(Batch {
                inserts,
                finds,
                deletes,
            });
        }
        batches.extend(phase2);
        DynamicWorkload {
            batches,
            phase1_len,
        }
    }

    /// [`DynamicWorkload::build`] with a controlled find hit ratio.
    ///
    /// The paper's protocol samples every find from the live population
    /// (hit-heavy); negative-lookup studies need the complement. Here each
    /// find is a live-pool sample with probability `hit_ratio` and a key
    /// **provably outside the dataset** otherwise, so `1 - hit_ratio` of
    /// phase-1 finds are guaranteed misses. Inserts and deletes are built
    /// by the same rules as [`DynamicWorkload::build`] (but on an
    /// independent random sequence — this is a new workload family, not a
    /// perturbation of the old one).
    pub fn build_with_hit_ratio(
        dataset: &Dataset,
        batch_size: usize,
        r: f64,
        seed: u64,
        hit_ratio: f64,
    ) -> Self {
        assert!(batch_size > 0);
        assert!((0.0..=1.0).contains(&r));
        assert!((0.0..=1.0).contains(&hit_ratio));
        let deletes_per_batch = ((batch_size as f64 * r).round() as usize).min(batch_size);
        let dataset_keys: std::collections::HashSet<u32> =
            dataset.pairs.iter().map(|&(k, _)| k).collect();

        let mut batches: Vec<Batch> = Vec::new();
        let mut live_pool: Vec<u32> = Vec::new();
        let mut live_set: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut rng = mix64(seed ^ 0x4E65_6761_7469_7665);
        let mut next = || {
            rng = mix64(rng);
            rng
        };

        for chunk in dataset.pairs.chunks(batch_size) {
            let inserts = chunk.to_vec();
            for &(k, _) in chunk {
                if live_set.insert(k) {
                    live_pool.push(k);
                }
            }
            let mut finds = Vec::with_capacity(chunk.len());
            for _ in 0..chunk.len() {
                let draw = next();
                let hit = (draw >> 11) as f64 / (1u64 << 53) as f64 <= hit_ratio;
                if hit && !live_pool.is_empty() {
                    finds.push(live_pool[(next() % live_pool.len() as u64) as usize]);
                } else {
                    // Rejection-sample a nonzero key outside the dataset —
                    // a guaranteed miss regardless of delete history.
                    loop {
                        let k = (next() % u32::MAX as u64) as u32 + 1;
                        if !dataset_keys.contains(&k) {
                            finds.push(k);
                            break;
                        }
                    }
                }
            }
            let n_del = deletes_per_batch.min(live_pool.len());
            let mut deletes = Vec::with_capacity(n_del);
            for _ in 0..n_del {
                let idx = (next() % live_pool.len() as u64) as usize;
                let k = live_pool.swap_remove(idx);
                live_set.remove(&k);
                deletes.push(k);
            }
            batches.push(Batch {
                inserts,
                finds,
                deletes,
            });
        }

        let phase1_len = batches.len();
        let mut phase2: Vec<Batch> = Vec::with_capacity(phase1_len);
        for b in &batches {
            let inserts: Vec<(u32, u32)> = b
                .deletes
                .iter()
                .map(|&k| (k, k.wrapping_mul(0x85EB_CA6B)))
                .collect();
            let deletes: Vec<u32> = b.inserts.iter().map(|&(k, _)| k).collect();
            let finds = b.finds.clone();
            phase2.push(Batch {
                inserts,
                finds,
                deletes,
            });
        }
        batches.extend(phase2);
        DynamicWorkload {
            batches,
            phase1_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    fn small_dataset() -> Dataset {
        DatasetSpec {
            name: "T",
            total_pairs: 1000,
            unique_keys: 900,
            zipf_s: 1.0,
            max_dup: 4,
        }
        .generate(11)
    }

    #[test]
    fn batches_partition_the_dataset() {
        let ds = small_dataset();
        let w = DynamicWorkload::build(&ds, 100, 0.2, 1);
        assert_eq!(w.phase1_len, 10);
        assert_eq!(w.batches.len(), 20);
        let total_inserted: usize = w.batches[..10].iter().map(|b| b.inserts.len()).sum();
        assert_eq!(total_inserted, 1000);
    }

    #[test]
    fn batch_composition_follows_r() {
        let ds = small_dataset();
        let w = DynamicWorkload::build(&ds, 100, 0.3, 1);
        for b in &w.batches[..w.phase1_len] {
            assert_eq!(b.inserts.len(), 100);
            assert_eq!(b.finds.len(), 100);
            assert!(b.deletes.len() <= 30);
        }
        // Steady-state batches delete exactly r·batch_size.
        assert_eq!(w.batches[5].deletes.len(), 30);
    }

    #[test]
    fn deletes_target_previously_inserted_keys() {
        let ds = small_dataset();
        let w = DynamicWorkload::build(&ds, 100, 0.5, 2);
        let mut inserted = std::collections::HashSet::new();
        for b in &w.batches[..w.phase1_len] {
            for &(k, _) in &b.inserts {
                inserted.insert(k);
            }
            for &k in &b.deletes {
                assert!(inserted.contains(&k), "delete of never-inserted key {k}");
            }
        }
    }

    #[test]
    fn phase1_deletes_always_hit_live_keys() {
        // Replaying the workload against a reference map: every delete must
        // find its key present (deletes sample the live pool).
        let ds = small_dataset();
        let w = DynamicWorkload::build(&ds, 100, 0.5, 3);
        let mut live = std::collections::HashSet::new();
        for b in &w.batches[..w.phase1_len] {
            for &(k, _) in &b.inserts {
                live.insert(k);
            }
            for &k in &b.deletes {
                assert!(live.remove(&k), "delete of non-live key {k}");
            }
        }
    }

    #[test]
    fn phase2_swaps_inserts_and_deletes() {
        let ds = small_dataset();
        let w = DynamicWorkload::build(&ds, 100, 0.2, 4);
        for j in 0..w.phase1_len {
            let p1 = &w.batches[j];
            let p2 = &w.batches[w.phase1_len + j];
            assert_eq!(p2.deletes.len(), p1.inserts.len());
            assert_eq!(p2.inserts.len(), p1.deletes.len());
            let p1_insert_keys: Vec<u32> = p1.inserts.iter().map(|&(k, _)| k).collect();
            assert_eq!(p2.deletes, p1_insert_keys);
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let ds = small_dataset();
        let a = DynamicWorkload::build(&ds, 64, 0.2, 5);
        let b = DynamicWorkload::build(&ds, 64, 0.2, 5);
        assert_eq!(a.batches.len(), b.batches.len());
        for (x, y) in a.batches.iter().zip(&b.batches) {
            assert_eq!(x.inserts, y.inserts);
            assert_eq!(x.finds, y.finds);
            assert_eq!(x.deletes, y.deletes);
        }
    }

    #[test]
    fn hit_ratio_zero_makes_every_phase1_find_a_miss() {
        let ds = small_dataset();
        let w = DynamicWorkload::build_with_hit_ratio(&ds, 100, 0.2, 7, 0.0);
        let dataset_keys: std::collections::HashSet<u32> =
            ds.pairs.iter().map(|&(k, _)| k).collect();
        for b in &w.batches[..w.phase1_len] {
            assert_eq!(b.finds.len(), 100);
            for &k in &b.finds {
                assert!(k != 0 && !dataset_keys.contains(&k), "find {k} can hit");
            }
        }
    }

    #[test]
    fn hit_ratio_mixes_live_and_absent_finds() {
        let ds = small_dataset();
        let w = DynamicWorkload::build_with_hit_ratio(&ds, 100, 0.0, 8, 0.5);
        let dataset_keys: std::collections::HashSet<u32> =
            ds.pairs.iter().map(|&(k, _)| k).collect();
        let (mut hits, mut misses) = (0usize, 0usize);
        for b in &w.batches[..w.phase1_len] {
            for &k in &b.finds {
                if dataset_keys.contains(&k) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        let total = (hits + misses) as f64;
        assert!(
            (0.35..=0.65).contains(&(hits as f64 / total)),
            "hit fraction {:.2} far from requested 0.5",
            hits as f64 / total
        );
    }

    #[test]
    fn hit_ratio_workload_is_deterministic_and_leaves_build_alone() {
        let ds = small_dataset();
        let a = DynamicWorkload::build_with_hit_ratio(&ds, 64, 0.2, 5, 0.9);
        let b = DynamicWorkload::build_with_hit_ratio(&ds, 64, 0.2, 5, 0.9);
        for (x, y) in a.batches.iter().zip(&b.batches) {
            assert_eq!(x.inserts, y.inserts);
            assert_eq!(x.finds, y.finds);
            assert_eq!(x.deletes, y.deletes);
        }
        // The classic builder is a distinct family: same batching skeleton,
        // untouched sampling sequence.
        let classic = DynamicWorkload::build(&ds, 64, 0.2, 5);
        assert_eq!(classic.phase1_len, a.phase1_len);
    }

    #[test]
    fn total_ops_counts_everything() {
        let ds = small_dataset();
        let w = DynamicWorkload::build(&ds, 100, 0.2, 6);
        let manual: usize = w.batches.iter().map(Batch::ops).sum();
        assert_eq!(w.total_ops(), manual);
        assert!(w.total_ops() > 2 * ds.len());
    }
}
