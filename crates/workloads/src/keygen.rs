//! Deterministic unique-key generation.
//!
//! Dataset generators need millions of *distinct* u32 keys with no
//! coordination overhead. We use a 4-round Feistel network over the 32-bit
//! space: a seeded bijection `u32 → u32`, so `feistel(0), feistel(1), …`
//! enumerates distinct pseudo-random keys by construction (no dedup set
//! required). Outputs equal to the reserved sentinels (0 and `u32::MAX`)
//! are skipped by the iterator.

/// A seeded 4-round Feistel permutation of the 32-bit integers.
#[derive(Debug, Clone, Copy)]
pub struct Feistel {
    round_keys: [u32; 4],
}

impl Feistel {
    /// Derive the permutation from a seed.
    pub fn new(seed: u64) -> Self {
        let mut round_keys = [0u32; 4];
        let mut s = seed;
        for rk in &mut round_keys {
            s = crate::mix64(s);
            *rk = (s >> 16) as u32;
        }
        Self { round_keys }
    }

    #[inline]
    fn round(x: u16, key: u32) -> u16 {
        let v = (x as u32 ^ key).wrapping_mul(0x9E37_79B9);
        ((v >> 16) ^ v) as u16
    }

    /// Apply the permutation.
    #[inline]
    pub fn permute(&self, x: u32) -> u32 {
        let mut l = (x >> 16) as u16;
        let mut r = (x & 0xFFFF) as u16;
        for &k in &self.round_keys {
            let nl = r;
            let nr = l ^ Self::round(r, k);
            l = nl;
            r = nr;
        }
        ((l as u32) << 16) | r as u32
    }
}

/// Iterator over `count` distinct non-sentinel keys (never 0 or
/// `u32::MAX`), deterministic in the seed.
pub fn unique_keys(seed: u64, count: usize) -> impl Iterator<Item = u32> {
    let f = Feistel::new(seed);
    (0u64..)
        .map(move |i| f.permute(i as u32))
        .filter(|&k| k != 0 && k != u32::MAX)
        .take(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn feistel_is_a_bijection_on_a_sample() {
        let f = Feistel::new(42);
        let mut seen = HashSet::new();
        for i in 0..100_000u32 {
            assert!(seen.insert(f.permute(i)), "collision at {i}");
        }
    }

    #[test]
    fn feistel_differs_by_seed() {
        let a = Feistel::new(1);
        let b = Feistel::new(2);
        assert!((0..100u32).any(|i| a.permute(i) != b.permute(i)));
    }

    #[test]
    fn unique_keys_yields_exactly_count_distinct_valid_keys() {
        let keys: Vec<u32> = unique_keys(7, 50_000).collect();
        assert_eq!(keys.len(), 50_000);
        let set: HashSet<u32> = keys.iter().copied().collect();
        assert_eq!(set.len(), 50_000);
        assert!(!set.contains(&0));
        assert!(!set.contains(&u32::MAX));
    }

    #[test]
    fn unique_keys_deterministic() {
        let a: Vec<u32> = unique_keys(9, 1000).collect();
        let b: Vec<u32> = unique_keys(9, 1000).collect();
        assert_eq!(a, b);
    }
}
