//! **String-key sweep** — unsized-tier throughput and arena footprint
//! across key-length distributions (DESIGN.md §4g).
//!
//! The unsized tier's design bet is that byte-string keys cost *nothing
//! extra* while they fit the 12-byte inline bound: a slot is one 16-byte
//! key word, eight of them fill exactly the same 128-byte line as the u32
//! tier's thirty-two 4-byte keys, and the fingerprint in every spill
//! handle rejects mismatches before the arena is ever dereferenced. This
//! sweep drives the same insert→find-all→delete-half workload through an
//! [`UnsizedTable`] under each stock key-length distribution and reports:
//!
//! * **insert / find Mops** — simulated throughput under the cost model.
//! * **lines per probe** — read transactions per bucket probe in a
//!   find-all window, net of the one value line per hit. The headline:
//!   exactly 1.0 all-inline (the u32 tier's figure), rising only as keys
//!   spill into the arena.
//! * **arena pages / live / frag bytes** — the slab allocator's footprint
//!   (zero all-inline).
//!
//! Self-checks (nonzero exit on failure): the all-inline window charges
//! `lookups + hits` read transactions *exactly* — the identity a u32-tier
//! [`DyCuckoo`] find window also satisfies, verified side by side in the
//! same process — and touches the arena zero times; the all-spill window
//! allocates arena pages; every tier's find-all finds every key.
//!
//! `TELEMETRY_SNAP=<path>` writes the registry as deterministic text; CI
//! pins `results/strkey-sweep.snap` against it.

use bench::report::Table;
use bench::telemetry::Telemetry;
use bench::{measure, scale, seed};
use dycuckoo::{Config, DyCuckoo, UnsizedConfig, UnsizedTable};
use gpu_sim::{Metrics, SimContext};
use workloads::{LengthDist, StrDatasetSpec};

const BATCH: usize = 512;

struct Outcome {
    pairs: u64,
    insert_mops: f64,
    find_mops: f64,
    found: u64,
    find_metrics: Metrics,
    arena_pages: u64,
    arena_live_bytes: u64,
    arena_frag_bytes: u64,
    device_bytes: u64,
}

/// Read transactions per bucket probe in a find window, net of the one
/// value line each hit pays (both tiers' split layouts charge exactly one).
fn lines_per_probe(m: &Metrics, hits: u64) -> f64 {
    (m.read_transactions - hits) as f64 / m.lookups as f64
}

fn run_dist(dist: LengthDist, pairs: usize, seed: u64) -> Outcome {
    // All-inline pins values inside the 7-byte value-word bound too, so
    // the whole workload is arena-free; the other distributions let values
    // spill alongside their keys.
    let val_len = match dist {
        LengthDist::AllInline => (0, 6),
        _ => (0, 24),
    };
    let data = StrDatasetSpec {
        pairs,
        key_dist: dist,
        val_len,
        seed,
    }
    .generate();
    let mut sim = SimContext::new();
    let mut table = UnsizedTable::new(
        UnsizedConfig {
            seed,
            ..UnsizedConfig::default()
        },
        &mut sim,
    )
    .expect("table construction");

    let mut insert_ns = 0.0;
    let mut insert_ops = 0u64;
    for chunk in data.chunks(BATCH) {
        let refs: Vec<(&[u8], &[u8])> = chunk
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        let (report, m) = measure(&mut sim, |sim| table.insert_batch(sim, &refs));
        report.expect("insert batch");
        insert_ns += m.ns;
        insert_ops += m.ops;
    }
    assert_eq!(table.len(), pairs as u64, "{}: inserts lost", dist.name());

    let mut found = 0u64;
    let (_, find_m) = measure(&mut sim, |sim| {
        for chunk in data.chunks(BATCH) {
            let keys: Vec<&[u8]> = chunk.iter().map(|(k, _)| k.as_slice()).collect();
            let got = table.find_batch(sim, &keys).expect("find batch");
            found += got.iter().filter(|g| g.is_some()).count() as u64;
        }
    });
    assert_eq!(found, pairs as u64, "{}: find-all missed keys", dist.name());

    let stats = table.stats();
    let out = Outcome {
        pairs: pairs as u64,
        insert_mops: insert_ops as f64 * 1000.0 / insert_ns,
        find_mops: find_m.ops as f64 * 1000.0 / find_m.ns,
        found,
        find_metrics: find_m.metrics,
        arena_pages: stats.arena_pages,
        arena_live_bytes: stats.arena_live_bytes,
        arena_frag_bytes: stats.arena_frag_bytes,
        device_bytes: stats.device_bytes,
    };
    table.release(&mut sim).expect("release");
    out
}

/// The u32 tier's find-all window over the same number of keys: the
/// reference figure the all-inline unsized window must match exactly.
fn u32_reference(pairs: usize, seed: u64) -> (Metrics, u64) {
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(
        Config {
            seed,
            ..Config::default()
        },
        &mut sim,
    )
    .expect("u32 table construction");
    let keys: Vec<u32> = (1..=pairs as u32).collect();
    for chunk in keys.chunks(BATCH) {
        let kvs: Vec<(u32, u32)> = chunk.iter().map(|&k| (k, k | 1)).collect();
        table.insert_batch(&mut sim, &kvs).expect("u32 insert");
    }
    let mut found = 0u64;
    let (_, m) = measure(&mut sim, |sim| {
        for chunk in keys.chunks(BATCH) {
            found += table
                .find_batch(sim, chunk)
                .iter()
                .filter(|g| g.is_some())
                .count() as u64;
        }
    });
    assert_eq!(found, pairs as u64, "u32 tier: find-all missed keys");
    (m.metrics, found)
}

fn main() {
    let mut tel = Telemetry::from_env();
    let scale = scale();
    let seed = seed();
    let pairs = ((40_000.0 * scale).round() as usize).max(3_000);
    println!(
        "String-key sweep: UnsizedTable insert/find-all, {pairs} pairs, batch {BATCH}, \
         distributions {{all_inline, mixed, all_spill}}"
    );

    let mut t = Table::new(&[
        "key dist",
        "pairs",
        "insert Mops",
        "find Mops",
        "lines/probe",
        "arena pages",
        "arena live B",
        "arena frag B",
        "device KiB",
    ]);
    let mut outcomes: Vec<(LengthDist, Outcome)> = Vec::new();
    for dist in LengthDist::STOCK {
        let o = run_dist(dist, pairs, seed);
        let labels = [("figure", "strkey_sweep"), ("dist", dist.name())];
        let reg = tel.registry();
        reg.counter("pairs", &labels, o.pairs);
        reg.counter("found", &labels, o.found);
        reg.counter("find_lookups", &labels, o.find_metrics.lookups);
        reg.counter("find_read_tx", &labels, o.find_metrics.read_transactions);
        reg.counter("arena_pages", &labels, o.arena_pages);
        reg.counter("arena_live_bytes", &labels, o.arena_live_bytes);
        reg.counter("arena_frag_bytes", &labels, o.arena_frag_bytes);
        reg.counter("device_bytes", &labels, o.device_bytes);
        t.row(vec![
            dist.name().to_string(),
            o.pairs.to_string(),
            format!("{:.1}", o.insert_mops),
            format!("{:.1}", o.find_mops),
            format!("{:.3}", lines_per_probe(&o.find_metrics, o.found)),
            o.arena_pages.to_string(),
            o.arena_live_bytes.to_string(),
            o.arena_frag_bytes.to_string(),
            format!("{:.0}", o.device_bytes as f64 / 1024.0),
        ]);
        outcomes.push((dist, o));
    }
    t.print("String-key sweep: unsized-tier throughput and arena footprint vs key length");

    // Self-checks — a failed assert exits nonzero, which is what CI wants.
    let inline = &outcomes[0].1;
    assert_eq!(
        inline.find_metrics.read_transactions,
        inline.find_metrics.lookups + inline.found,
        "all-inline find-all must charge exactly one line per probe plus one per hit"
    );
    assert_eq!(
        inline.find_metrics.random_read_transactions
            + inline.find_metrics.dependent_read_transactions,
        0,
        "all-inline probes must never touch the arena"
    );
    assert_eq!(
        (inline.arena_pages, inline.arena_live_bytes),
        (0, 0),
        "all-inline workload must allocate no arena pages"
    );
    let (u32_m, u32_found) = u32_reference(pairs, seed);
    assert_eq!(
        u32_m.read_transactions,
        u32_m.lookups + u32_found,
        "u32-tier find-all must satisfy the same one-line-per-probe identity"
    );
    assert_eq!(
        lines_per_probe(&inline.find_metrics, inline.found),
        lines_per_probe(&u32_m, u32_found),
        "all-inline probe cost must equal the u32 tier's"
    );
    let spill = &outcomes[2].1;
    assert!(
        spill.arena_pages > 0 && spill.arena_live_bytes > 0,
        "all-spill workload must live in the arena"
    );
    assert!(
        lines_per_probe(&spill.find_metrics, spill.found)
            >= lines_per_probe(&inline.find_metrics, inline.found),
        "spilled probes cannot be cheaper than inline ones"
    );
    println!(
        "\nAll-inline find-all: {:.3} lines/probe — identical to the u32 tier's {:.3}; \
         the byte-key tier is free until a key actually spills.",
        lines_per_probe(&inline.find_metrics, inline.found),
        lines_per_probe(&u32_m, u32_found),
    );
    tel.finish();
}
