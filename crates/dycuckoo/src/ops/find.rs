//! Warp-centric `find`.
//!
//! The key's candidate subtables come from the configured
//! [`crate::Layering`]: at most **two** probes under the two-layer scheme
//! (the paper's guarantee), up to `d` under plain d-ary cuckoo (the
//! alternative the ablation compares against). Each probe is one coalesced
//! read transaction in which every lane of the warp compares one slot,
//! followed by a ballot. A hit additionally reads one value line (keys and
//! values are stored separately, so misses never pay for value traffic).
//! No locks are taken.

use gpu_sim::{run_rounds_with, Metrics, RoundCtx, RoundKernel, StepOutcome};

use crate::subtable::SubTable;
use crate::table::migration::{MigrationView, Route};
use crate::table::TableShape;

/// Per-warp state: a slice of keys processed one at a time (warp-centric).
pub(crate) struct FindWarp {
    keys: Vec<u32>,
    /// Index of this warp's first result in the output vector.
    out_base: usize,
    cur: usize,
    /// Which candidate subtable the current op probes next.
    cand_idx: usize,
}

struct FindKernel<'a> {
    tables: &'a [SubTable],
    shape: &'a TableShape,
    /// In-flight incremental migration: probes of the draining subtable are
    /// routed per key to its old or fresh bucket — still exactly one probe
    /// per candidate subtable, so the two-lookup bound holds mid-migration.
    migration: Option<(MigrationView, &'a SubTable)>,
    results: &'a mut [Option<u32>],
}

impl RoundKernel<FindWarp> for FindKernel<'_> {
    fn step(&mut self, warp: &mut FindWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let Some(&key) = warp.keys.get(warp.cur) else {
            return StepOutcome::Done;
        };
        let cands = self.shape.candidates(key);
        let t = cands.get(warp.cand_idx);
        let (table, bucket) = match self.migration {
            Some((view, fresh)) if view.table == t => {
                match view.route(&self.shape.hashes[t], key) {
                    Route::Old(b) => (&self.tables[t], b),
                    Route::Fresh(b) => (fresh, b),
                }
            }
            _ => {
                let table = &self.tables[t];
                (table, self.shape.hashes[t].bucket(key, table.n_buckets()))
            }
        };
        if let Some(slot) = table.probe_find(bucket, key, ctx) {
            // Hit: fetch the value (free under AoS — it came with the probe).
            self.shape.cfg.layout.charge_value_read(ctx);
            self.results[warp.out_base + warp.cur] = Some(table.bucket_vals(bucket)[slot]);
            if obs::is_enabled() {
                obs::emit(obs::Event::OpRetired {
                    kind: obs::OpKind::Find,
                    op: 0,
                    key: key as u64,
                    outcome: obs::OpOutcome::Hit,
                    probes: warp.cand_idx as u32 + 1,
                    evict_depth: 0,
                    lock_waits: 0,
                });
            }
            warp.cur += 1;
            warp.cand_idx = 0;
        } else {
            warp.cand_idx += 1;
            if warp.cand_idx == cands.len() {
                self.results[warp.out_base + warp.cur] = None;
                if obs::is_enabled() {
                    obs::emit(obs::Event::OpRetired {
                        kind: obs::OpKind::Find,
                        op: 0,
                        key: key as u64,
                        outcome: obs::OpOutcome::Miss,
                        probes: warp.cand_idx as u32,
                        evict_depth: 0,
                        lock_waits: 0,
                    });
                }
                warp.cur += 1;
                warp.cand_idx = 0;
            }
        }
        if warp.cur == warp.keys.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Pending
        }
    }
}

/// Execute a batched find. Returns one `Option<u32>` per key, in order.
pub(crate) fn find_batch<'a>(
    tables: &'a [SubTable],
    shape: &'a TableShape,
    keys: &[u32],
    migration: Option<(MigrationView, &'a SubTable)>,
    metrics: &mut Metrics,
) -> Vec<Option<u32>> {
    let mut results = vec![None; keys.len()];
    let mut warps: Vec<FindWarp> = Vec::with_capacity(keys.len() / 32 + 1);
    let mut base = 0;
    for chunk in keys.chunks(gpu_sim::WARP_SIZE) {
        warps.push(FindWarp {
            keys: chunk.to_vec(),
            out_base: base,
            cur: 0,
            cand_idx: 0,
        });
        base += chunk.len();
    }
    let mut kernel = FindKernel {
        tables,
        shape,
        migration,
        results: &mut results,
    };
    let recording = obs::is_enabled();
    let rounds_before = metrics.rounds;
    if recording {
        obs::span_begin(obs::Event::LaunchBegin {
            kind: obs::OpKind::Find,
            warps: warps.len() as u32,
        });
    }
    run_rounds_with(&mut kernel, &mut warps, metrics, shape.cfg.schedule);
    if recording {
        obs::span_end(obs::Event::LaunchEnd {
            rounds: metrics.rounds - rounds_before,
        });
    }
    results
}
