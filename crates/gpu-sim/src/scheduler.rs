//! Round-based interleaved execution of in-flight warps.
//!
//! A real GPU keeps thousands of warps in flight; their loop iterations
//! interleave, which is when lock conflicts occur. The simulator reproduces
//! this with **rounds**: each round executes one step (one iteration of the
//! kernel's while-loop) of every still-pending warp. Locks acquired during
//! a round stay held until the kernel's end-of-round hook runs, so warps
//! later in the round observe conflicts exactly as truly concurrent warps
//! would.
//!
//! The order warps execute *within* a round is a [`SchedulePolicy`]
//! (default: fixed warp-index order). Any policy is deterministic: a given
//! (input, policy) pair always produces the same interleaving, the same
//! conflicts, and the same metrics — see [`crate::explore`].

use crate::atomic::RoundCtx;
use crate::explore::SchedulePolicy;
use crate::metrics::Metrics;

/// What a warp reports after executing one round step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// All of the warp's operations have completed; stop scheduling it.
    Done,
    /// The warp still has active operations; schedule it next round.
    Pending,
}

/// A kernel driven round-by-round over a set of warp states.
///
/// The kernel object owns (usually borrows) the data structures the warps
/// operate on — subtables, lock tables, output buffers — so a single `&mut`
/// borrow covers both the per-warp step and the end-of-round bookkeeping.
pub trait RoundKernel<S> {
    /// Execute one round step of one warp.
    fn step(&mut self, state: &mut S, ctx: &mut RoundCtx) -> StepOutcome;

    /// Called once after every round. Flush deferred lock releases here
    /// (call [`crate::atomic::Locks::end_round`] on every lock table the
    /// kernel touches).
    fn end_round(&mut self) {}
}

/// Drive the warp states to completion under `kernel` in fixed warp-index
/// order (the historical behaviour; what all benchmarks use).
///
/// Returns the number of rounds executed (also accumulated in
/// `metrics.rounds`).
pub fn run_rounds<S, K: RoundKernel<S>>(
    kernel: &mut K,
    states: &mut [S],
    metrics: &mut Metrics,
) -> u64 {
    run_rounds_with(kernel, states, metrics, SchedulePolicy::FixedOrder)
}

/// Drive the warp states to completion under `kernel`, ordering each
/// round's pending warps with `policy`.
///
/// Execution is deterministic for a given `(states, policy)` pair. The
/// per-round permutation is salted with the **cumulative** `metrics.rounds`
/// counter so that successive kernel launches sharing one `Metrics` (e.g.
/// the per-chunk launches of a batched insert) explore different
/// permutations rather than repeating round 1's ordering forever.
///
/// Bookkeeping guarantees, regardless of policy:
///
/// * `metrics.rounds` advances exactly once per round, *before* any warp
///   steps, so a warp finishing mid-round can never skew the count.
/// * Deferred lock releases (`end_round`) run strictly after every warp of
///   the round has stepped **and** after the round's conflict groups are
///   folded into the metrics (`ctx.finish()`), so lock-failure accounting
///   cannot observe a half-finished round.
pub fn run_rounds_with<S, K: RoundKernel<S>>(
    kernel: &mut K,
    states: &mut [S],
    metrics: &mut Metrics,
    policy: SchedulePolicy,
) -> u64 {
    let (rounds, pending) = run_rounds_core(kernel, states, metrics, policy, u64::MAX);
    debug_assert!(pending.is_empty());
    rounds
}

/// Result of a bounded (quantum) launch: how many rounds executed and how
/// many warps were still pending when the round budget expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantumOutcome {
    /// Rounds executed by this launch (≤ the budget).
    pub rounds: u64,
    /// Warps whose operations had not completed when the budget ran out.
    pub pending: usize,
}

/// Drive the warp states for **at most** `max_rounds` rounds — the
/// quantum-scheduling hook used by incremental maintenance.
///
/// Identical to [`run_rounds_with`] while the budget lasts (same round
/// bookkeeping, same lock semantics, same metrics), except that when the
/// budget expires the still-pending warp states are compacted to the front
/// of `states` (in warp-index order) and the vector truncated to them, so
/// the caller can resume the launch later by passing the vector back in.
/// A budget of `u64::MAX` behaves exactly like [`run_rounds_with`].
pub fn run_rounds_quantum<S, K: RoundKernel<S>>(
    kernel: &mut K,
    states: &mut Vec<S>,
    metrics: &mut Metrics,
    policy: SchedulePolicy,
    max_rounds: u64,
) -> QuantumOutcome {
    let (rounds, mut pending) = run_rounds_core(kernel, states, metrics, policy, max_rounds);
    // Compact surviving warp states to the front, preserving warp-index
    // order so a resumed launch steps them in the same relative order.
    pending.sort_unstable();
    for (dst, &w) in pending.iter().enumerate() {
        if dst != w {
            states.swap(dst, w);
        }
    }
    states.truncate(pending.len());
    QuantumOutcome {
        rounds,
        pending: pending.len(),
    }
}

fn run_rounds_core<S, K: RoundKernel<S>>(
    kernel: &mut K,
    states: &mut [S],
    metrics: &mut Metrics,
    policy: SchedulePolicy,
    max_rounds: u64,
) -> (u64, Vec<usize>) {
    let mut pending: Vec<usize> = (0..states.len()).collect();
    // Per-warp feedback for adversarial policies: did warp w fail a lock
    // acquisition on its most recent step?
    let mut contended: Vec<bool> = vec![false; states.len()];
    let mut rounds = 0u64;
    while !pending.is_empty() && rounds < max_rounds {
        rounds += 1;
        metrics.charge(crate::metrics::ChargeKind::Rounds, 1);
        if obs::is_enabled() {
            // Stamp flight-recorder events from this round with the
            // cumulative round counter.
            obs::set_rounds(metrics.rounds);
        }
        policy.order_round(metrics.rounds, &mut pending, &contended);
        let mut ctx = RoundCtx::new(metrics);
        // Explicit compaction instead of `Vec::retain`: the loop below is
        // the one place warp steps execute, keeping kernel side effects out
        // of a retain closure and making the step order — which is now
        // policy-controlled — obvious at a glance.
        let mut kept = 0usize;
        for slot in 0..pending.len() {
            let w = pending[slot];
            let failures_before = ctx.lock_failures();
            let outcome = kernel.step(&mut states[w], &mut ctx);
            contended[w] = ctx.lock_failures() > failures_before;
            if outcome == StepOutcome::Pending {
                pending[kept] = w;
                kept += 1;
            }
        }
        pending.truncate(kept);
        ctx.finish();
        kernel.end_round();
    }
    (rounds, pending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::Locks;

    struct Countdown;

    impl RoundKernel<u32> for Countdown {
        fn step(&mut self, s: &mut u32, _ctx: &mut RoundCtx) -> StepOutcome {
            *s -= 1;
            if *s == 0 {
                StepOutcome::Done
            } else {
                StepOutcome::Pending
            }
        }
    }

    #[test]
    fn warps_run_until_done() {
        let mut m = Metrics::default();
        let mut states = vec![3u32, 1, 2];
        let rounds = run_rounds(&mut Countdown, &mut states, &mut m);
        assert_eq!(rounds, 3);
        assert_eq!(m.rounds, 3);
        assert!(states.iter().all(|&s| s == 0));
    }

    #[test]
    fn empty_input_runs_zero_rounds() {
        let mut m = Metrics::default();
        let mut states: Vec<u32> = vec![];
        assert_eq!(run_rounds(&mut Countdown, &mut states, &mut m), 0);
    }

    struct LockOnce {
        locks: Locks,
    }

    impl RoundKernel<bool> for LockOnce {
        fn step(&mut self, acquired: &mut bool, ctx: &mut RoundCtx) -> StepOutcome {
            if !*acquired && ctx.atomic_cas_lock(&mut self.locks, 0, 0) {
                *acquired = true;
                ctx.atomic_exch_unlock(&mut self.locks, 0, 0);
            }
            if *acquired {
                StepOutcome::Done
            } else {
                StepOutcome::Pending
            }
        }

        fn end_round(&mut self) {
            self.locks.end_round();
        }
    }

    #[test]
    fn lock_contention_serializes_across_rounds() {
        // Two warps both need lock 0; only one can hold it per round, so the
        // second succeeds one round later.
        let mut m = Metrics::default();
        let mut kernel = LockOnce {
            locks: Locks::new(1),
        };
        let mut states = vec![false, false];
        let rounds = run_rounds(&mut kernel, &mut states, &mut m);
        assert_eq!(rounds, 2);
        assert_eq!(m.lock_failures, 1);
        assert!(kernel.locks.all_free());
    }

    #[test]
    fn n_contending_warps_take_n_rounds() {
        let mut m = Metrics::default();
        let mut kernel = LockOnce {
            locks: Locks::new(1),
        };
        let mut states = vec![false; 10];
        let rounds = run_rounds(&mut kernel, &mut states, &mut m);
        assert_eq!(rounds, 10);
        assert_eq!(m.lock_failures, 9 + 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut m = Metrics::default();
            let mut kernel = LockOnce {
                locks: Locks::new(1),
            };
            let mut states = vec![false; 5];
            run_rounds(&mut kernel, &mut states, &mut m);
            m
        };
        assert_eq!(run(), run());
    }

    /// A warp that finishes in round 1 while others keep contending: the
    /// exact rounds / lock_failures counts must not drift no matter when a
    /// warp drops out mid-round (regression for the `pending` compaction vs
    /// deferred-unlock ordering).
    struct MixedFinish {
        locks: Locks,
    }

    /// State: `None` → finish immediately without touching locks;
    /// `Some(acquired)` → behave like [`LockOnce`].
    impl RoundKernel<Option<bool>> for MixedFinish {
        fn step(&mut self, s: &mut Option<bool>, ctx: &mut RoundCtx) -> StepOutcome {
            match s {
                None => StepOutcome::Done,
                Some(acquired) => {
                    if !*acquired && ctx.atomic_cas_lock(&mut self.locks, 0, 0) {
                        *acquired = true;
                        ctx.atomic_exch_unlock(&mut self.locks, 0, 0);
                    }
                    if *acquired {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Pending
                    }
                }
            }
        }

        fn end_round(&mut self) {
            self.locks.end_round();
        }
    }

    #[test]
    fn mid_round_finishers_do_not_skew_round_or_lock_accounting() {
        // Warps: [no-lock, contender, no-lock, contender, contender].
        // Round 1: both no-lock warps finish; contender A locks; B and C
        // fail → 2 lock failures. Rounds 2, 3: remaining contenders go one
        // per round → 1 then 0 failures. Exactly 3 rounds, 3 failures.
        let mut m = Metrics::default();
        let mut kernel = MixedFinish {
            locks: Locks::new(1),
        };
        let mut states = vec![None, Some(false), None, Some(false), Some(false)];
        let rounds = run_rounds(&mut kernel, &mut states, &mut m);
        assert_eq!(rounds, 3);
        assert_eq!(m.rounds, 3);
        assert_eq!(m.lock_failures, 2 + 1);
        assert!(kernel.locks.all_free());
    }

    #[test]
    fn policies_preserve_totals_on_symmetric_contention() {
        // All warps contend for one lock: any order admits exactly one
        // winner per round, so rounds and total failures are
        // policy-invariant even though the winner identity is not.
        for policy in [
            SchedulePolicy::FixedOrder,
            SchedulePolicy::Reversed,
            SchedulePolicy::Rotating { stride: 3 },
            SchedulePolicy::Shuffled { seed: 11 },
            SchedulePolicy::ContendedFirst { seed: 5 },
        ] {
            let mut m = Metrics::default();
            let mut kernel = LockOnce {
                locks: Locks::new(1),
            };
            let mut states = vec![false; 6];
            let rounds = run_rounds_with(&mut kernel, &mut states, &mut m, policy);
            assert_eq!(rounds, 6, "{policy:?}");
            assert_eq!(m.lock_failures, 5 + 4 + 3 + 2 + 1, "{policy:?}");
            assert!(kernel.locks.all_free(), "{policy:?}");
        }
    }

    #[test]
    fn reversed_policy_flips_the_race_winner() {
        // Two warps, two locks, each wants lock 0 first. Under FixedOrder
        // warp 0 wins round 1; under Reversed warp 1 does. Record who
        // acquired in round 1 via the state vector.
        struct FirstGrab {
            locks: Locks,
            winner: Option<usize>,
        }
        impl RoundKernel<(usize, bool)> for FirstGrab {
            fn step(&mut self, s: &mut (usize, bool), ctx: &mut RoundCtx) -> StepOutcome {
                if !s.1 && ctx.atomic_cas_lock(&mut self.locks, 0, 0) {
                    s.1 = true;
                    if self.winner.is_none() {
                        self.winner = Some(s.0);
                    }
                    ctx.atomic_exch_unlock(&mut self.locks, 0, 0);
                }
                if s.1 {
                    StepOutcome::Done
                } else {
                    StepOutcome::Pending
                }
            }
            fn end_round(&mut self) {
                self.locks.end_round();
            }
        }
        let run = |policy| {
            let mut m = Metrics::default();
            let mut kernel = FirstGrab {
                locks: Locks::new(1),
                winner: None,
            };
            let mut states = vec![(0usize, false), (1usize, false)];
            run_rounds_with(&mut kernel, &mut states, &mut m, policy);
            kernel.winner.unwrap()
        };
        assert_eq!(run(SchedulePolicy::FixedOrder), 0);
        assert_eq!(run(SchedulePolicy::Reversed), 1);
    }

    #[test]
    fn quantum_with_unbounded_budget_matches_run_rounds_with() {
        let full = || {
            let mut m = Metrics::default();
            let mut kernel = LockOnce {
                locks: Locks::new(1),
            };
            let mut states = vec![false; 6];
            let rounds =
                run_rounds_with(&mut kernel, &mut states, &mut m, SchedulePolicy::FixedOrder);
            (rounds, m)
        };
        let quantum = || {
            let mut m = Metrics::default();
            let mut kernel = LockOnce {
                locks: Locks::new(1),
            };
            let mut states = vec![false; 6];
            let out = run_rounds_quantum(
                &mut kernel,
                &mut states,
                &mut m,
                SchedulePolicy::FixedOrder,
                u64::MAX,
            );
            assert_eq!(out.pending, 0);
            assert!(states.is_empty());
            (out.rounds, m)
        };
        assert_eq!(full(), quantum());
    }

    #[test]
    fn quantum_budget_suspends_and_resumes_to_identical_totals() {
        // Ten warps contending for one lock need ten rounds. Run them one
        // round per quantum: the per-quantum pending counts step down by
        // one, and the summed rounds / lock failures match the single
        // unbounded launch exactly.
        let mut m = Metrics::default();
        let mut kernel = LockOnce {
            locks: Locks::new(1),
        };
        let mut states = vec![false; 10];
        let mut total_rounds = 0u64;
        let mut launches = 0u32;
        while !states.is_empty() {
            let before = states.len();
            let out = run_rounds_quantum(
                &mut kernel,
                &mut states,
                &mut m,
                SchedulePolicy::FixedOrder,
                1,
            );
            assert_eq!(out.rounds, 1);
            assert_eq!(out.pending, before - 1, "one winner per contended round");
            assert!(kernel.locks.all_free(), "locks quiesce between quanta");
            total_rounds += out.rounds;
            launches += 1;
        }
        assert_eq!(launches, 10);
        assert_eq!(total_rounds, 10);
        assert_eq!(m.rounds, 10);
        assert_eq!(m.lock_failures, 9 + 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn quantum_compaction_preserves_warp_order() {
        // Warps finish in round min(state); budget of 2 retires the 1s and
        // 2s, leaving the larger countdowns in their original order.
        let mut m = Metrics::default();
        let mut states = vec![5u32, 1, 4, 2, 3];
        let out = run_rounds_quantum(
            &mut Countdown,
            &mut states,
            &mut m,
            SchedulePolicy::FixedOrder,
            2,
        );
        assert_eq!(out.rounds, 2);
        assert_eq!(out.pending, 3);
        // 5, 4, 3 have each been decremented twice.
        assert_eq!(states, vec![3, 2, 1]);
    }

    #[test]
    fn replay_is_bit_identical_per_policy() {
        for policy in [
            SchedulePolicy::Shuffled { seed: 77 },
            SchedulePolicy::ContendedFirst { seed: 77 },
        ] {
            let run = || {
                let mut m = Metrics::default();
                let mut kernel = LockOnce {
                    locks: Locks::new(1),
                };
                let mut states = vec![false; 8];
                run_rounds_with(&mut kernel, &mut states, &mut m, policy);
                m
            };
            assert_eq!(run(), run(), "{policy:?}");
        }
    }
}
