//! **Figure 10** — "Throughput for varying the ratio r": the dynamic
//! two-phase workload with r ∈ {0.1 … 0.5} deletions per insertion, per
//! dataset, for MegaKV / Slab / DyCuckoo.
//!
//! Paper shape to reproduce: DyCuckoo best overall; DyCuckoo and MegaKV
//! degrade as r grows (more resizes) while Slab *improves* (tombstones are
//! recycled for free); the DyCuckoo–MegaKV margin widens with r because
//! MegaKV's resizes are full rehashes.

use bench::driver::{build_dynamic, run_dynamic, Scheme};
use bench::report::{fmt_mops, Table};
use bench::{scale, seed};
use gpu_sim::SimContext;
use workloads::{paper_datasets, DynamicWorkload};

fn main() {
    let scale = scale();
    let seed = seed();
    let batch = ((1_000_000.0 * scale).round() as usize).max(1000);
    println!(
        "Figure 10: dynamic throughput vs delete ratio r (batch={batch}, α=0.3, β=0.85, scale={scale})"
    );

    for spec in paper_datasets() {
        let ds = spec.scaled(scale).generate(seed);
        let mut t = Table::new(&["r", "MegaKV", "Slab", "DyCuckoo"]);
        for r in [0.1, 0.2, 0.3, 0.4, 0.5] {
            let w = DynamicWorkload::build(&ds, batch, r, seed ^ (r * 100.0) as u64);
            let mut row = vec![format!("{r:.1}")];
            for scheme in Scheme::dynamic_set() {
                let mut sim = SimContext::new();
                let mut table = build_dynamic(scheme, 0.30, 0.85, batch, seed, &mut sim);
                let res = run_dynamic(table.as_mut(), &mut sim, &w);
                row.push(fmt_mops(res.mops));
            }
            t.row(row);
        }
        t.print(&format!("Figure 10 [{}]: overall Mops vs r", spec.name));
    }
}
