//! Kernel metrics: the quantities the paper's evaluation is sensitive to.
//!
//! Every performance claim in the paper reduces to how many coalesced memory
//! transactions a kernel issues, how many random bucket lookups it performs,
//! how many evictions an insert chain causes, and how badly atomics to the
//! same bucket serialize. [`Metrics`] counts exactly these; [`crate::cost`]
//! converts the counts into simulated time.

/// Counters accumulated while simulated kernels execute.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Metrics {
    /// Coalesced 128-byte read transactions issued to device memory.
    pub read_transactions: u64,
    /// Coalesced 128-byte write transactions issued to device memory.
    pub write_transactions: u64,
    /// Uncoalesced (random single-slot) read transactions. Each still
    /// occupies a full line but wastes most of it, so the cost model
    /// charges a bandwidth derate (per-slot schemes like CUDPP pay this).
    pub random_read_transactions: u64,
    /// Uncoalesced (random single-slot) write transactions.
    pub random_write_transactions: u64,
    /// Pointer-chasing reads: coalesced lines whose address depends on the
    /// previous read (chain traversal). They defeat memory-level
    /// parallelism and row locality, so the cost model charges a derate.
    pub dependent_read_transactions: u64,
    /// Atomic operations issued (`atomicCAS` + `atomicExch`).
    pub atomic_ops: u64,
    /// Serial-chain atomic units: per round, the size of the *largest*
    /// conflict group (atomics to one address serialize; distinct addresses
    /// proceed in parallel). This is the latency tail that makes contended
    /// kernels degrade ∝ conflict degree, as in the paper's profiling
    /// figure.
    pub atomic_serial_units: u64,
    /// Scheduler rounds executed (one round = one lockstep pass over all
    /// in-flight warps).
    pub rounds: u64,
    /// Bucket probes (each is one read transaction plus a warp-wide compare).
    pub lookups: u64,
    /// Cuckoo evictions performed by insert kernels.
    pub evictions: u64,
    /// Failed `atomicCAS` lock acquisitions (a voter re-vote in Algorithm 1).
    pub lock_failures: u64,
    /// Operations completed in this measurement window.
    pub ops: u64,
}

/// Counter-kind selector for [`Metrics::charge`], re-exported from
/// [`obs::attr`] so kernels name the counter they bump and cost attribution
/// sees the identical increment.
pub use obs::attr::Kind as ChargeKind;

impl Metrics {
    /// The single charge choke point: increment the counter `kind` selects
    /// by `n` **and** credit the same amount to the active attribution
    /// scope ([`obs::attr`]). All live charge sites — `RoundCtx` methods,
    /// scheduler round ticks, bulk rehash drains, baseline kernels — route
    /// through here, which is what makes the conservation law
    /// (Σ attributed == totals) hold by construction. Aggregation paths
    /// ([`Metrics::merge`], standalone cost references) deliberately do
    /// not: their increments replay counts that were already attributed
    /// once.
    #[inline]
    pub fn charge(&mut self, kind: ChargeKind, n: u64) {
        match kind {
            ChargeKind::ReadTx => self.read_transactions += n,
            ChargeKind::WriteTx => self.write_transactions += n,
            ChargeKind::RandomReadTx => self.random_read_transactions += n,
            ChargeKind::RandomWriteTx => self.random_write_transactions += n,
            ChargeKind::DependentReadTx => self.dependent_read_transactions += n,
            ChargeKind::AtomicOps => self.atomic_ops += n,
            ChargeKind::AtomicSerialUnits => self.atomic_serial_units += n,
            ChargeKind::Rounds => self.rounds += n,
            ChargeKind::Lookups => self.lookups += n,
            ChargeKind::Evictions => self.evictions += n,
            ChargeKind::LockFailures => self.lock_failures += n,
            ChargeKind::Ops => self.ops += n,
        }
        obs::attr::charge(kind, n);
    }

    /// Read the counter `kind` selects (the inverse of [`Metrics::charge`]),
    /// so conservation checks can compare attribution totals against every
    /// field without naming them one by one.
    #[inline]
    pub fn get(&self, kind: ChargeKind) -> u64 {
        match kind {
            ChargeKind::ReadTx => self.read_transactions,
            ChargeKind::WriteTx => self.write_transactions,
            ChargeKind::RandomReadTx => self.random_read_transactions,
            ChargeKind::RandomWriteTx => self.random_write_transactions,
            ChargeKind::DependentReadTx => self.dependent_read_transactions,
            ChargeKind::AtomicOps => self.atomic_ops,
            ChargeKind::AtomicSerialUnits => self.atomic_serial_units,
            ChargeKind::Rounds => self.rounds,
            ChargeKind::Lookups => self.lookups,
            ChargeKind::Evictions => self.evictions,
            ChargeKind::LockFailures => self.lock_failures,
            ChargeKind::Ops => self.ops,
        }
    }

    /// Total coalesced memory transactions (reads + writes).
    #[inline]
    pub fn transactions(&self) -> u64 {
        self.read_transactions + self.write_transactions
    }

    /// Total uncoalesced memory transactions.
    #[inline]
    pub fn random_transactions(&self) -> u64 {
        self.random_read_transactions + self.random_write_transactions
    }

    /// Copy every counter into a unified [`obs::Registry`] under the
    /// `sim_` namespace with the given labels. Counters add, so
    /// registering several windows under one label set accumulates them.
    pub fn register_into(&self, reg: &mut obs::Registry, labels: &[(&str, &str)]) {
        reg.counter("sim_read_transactions", labels, self.read_transactions);
        reg.counter("sim_write_transactions", labels, self.write_transactions);
        reg.counter(
            "sim_random_read_transactions",
            labels,
            self.random_read_transactions,
        );
        reg.counter(
            "sim_random_write_transactions",
            labels,
            self.random_write_transactions,
        );
        reg.counter(
            "sim_dependent_read_transactions",
            labels,
            self.dependent_read_transactions,
        );
        reg.counter("sim_atomic_ops", labels, self.atomic_ops);
        reg.counter("sim_atomic_serial_units", labels, self.atomic_serial_units);
        reg.counter("sim_rounds", labels, self.rounds);
        reg.counter("sim_lookups", labels, self.lookups);
        reg.counter("sim_evictions", labels, self.evictions);
        reg.counter("sim_lock_failures", labels, self.lock_failures);
        reg.counter("sim_ops", labels, self.ops);
    }

    /// Fold another metrics window into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.read_transactions += other.read_transactions;
        self.write_transactions += other.write_transactions;
        self.random_read_transactions += other.random_read_transactions;
        self.random_write_transactions += other.random_write_transactions;
        self.dependent_read_transactions += other.dependent_read_transactions;
        self.atomic_ops += other.atomic_ops;
        self.atomic_serial_units += other.atomic_serial_units;
        self.rounds += other.rounds;
        self.lookups += other.lookups;
        self.evictions += other.evictions;
        self.lock_failures += other.lock_failures;
        self.ops += other.ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_sums_reads_and_writes() {
        let m = Metrics {
            read_transactions: 3,
            write_transactions: 4,
            ..Metrics::default()
        };
        assert_eq!(m.transactions(), 7);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = Metrics {
            read_transactions: 1,
            write_transactions: 2,
            random_read_transactions: 3,
            random_write_transactions: 4,
            dependent_read_transactions: 12,
            atomic_ops: 5,
            atomic_serial_units: 6,
            rounds: 7,
            lookups: 8,
            evictions: 9,
            lock_failures: 10,
            ops: 11,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.read_transactions, 2);
        assert_eq!(a.write_transactions, 4);
        assert_eq!(a.random_read_transactions, 6);
        assert_eq!(a.random_write_transactions, 8);
        assert_eq!(a.dependent_read_transactions, 24);
        assert_eq!(a.atomic_ops, 10);
        assert_eq!(a.atomic_serial_units, 12);
        assert_eq!(a.rounds, 14);
        assert_eq!(a.lookups, 16);
        assert_eq!(a.evictions, 18);
        assert_eq!(a.lock_failures, 20);
        assert_eq!(a.ops, 22);
    }

    #[test]
    fn random_transactions_sums_both_directions() {
        let m = Metrics {
            random_read_transactions: 5,
            random_write_transactions: 2,
            ..Metrics::default()
        };
        assert_eq!(m.random_transactions(), 7);
    }

    #[test]
    fn register_into_covers_every_counter() {
        let m = Metrics {
            read_transactions: 1,
            write_transactions: 2,
            random_read_transactions: 3,
            random_write_transactions: 4,
            dependent_read_transactions: 5,
            atomic_ops: 6,
            atomic_serial_units: 7,
            rounds: 8,
            lookups: 9,
            evictions: 10,
            lock_failures: 11,
            ops: 12,
        };
        let mut reg = obs::Registry::new();
        let labels = [("kernel", "insert")];
        m.register_into(&mut reg, &labels);
        // One registry entry per Metrics field.
        assert_eq!(reg.len(), 12);
        assert_eq!(reg.get_counter("sim_evictions", &labels), Some(10));
        assert_eq!(reg.get_counter("sim_ops", &labels), Some(12));
        // Registering again accumulates.
        m.register_into(&mut reg, &labels);
        assert_eq!(reg.get_counter("sim_rounds", &labels), Some(16));
    }

    #[test]
    fn charge_bumps_exactly_the_selected_counter() {
        let mut m = Metrics::default();
        for (i, kind) in ChargeKind::ALL.iter().enumerate() {
            m.charge(*kind, (i + 1) as u64);
        }
        assert_eq!(m.read_transactions, 1);
        assert_eq!(m.write_transactions, 2);
        assert_eq!(m.random_read_transactions, 3);
        assert_eq!(m.random_write_transactions, 4);
        assert_eq!(m.dependent_read_transactions, 5);
        assert_eq!(m.atomic_ops, 6);
        assert_eq!(m.atomic_serial_units, 7);
        assert_eq!(m.rounds, 8);
        assert_eq!(m.lookups, 9);
        assert_eq!(m.evictions, 10);
        assert_eq!(m.lock_failures, 11);
        assert_eq!(m.ops, 12);
    }

    #[test]
    fn charge_feeds_the_attribution_tree() {
        let mut m = Metrics::default();
        obs::attr::start();
        {
            let _s = obs::attr::scope("kernel/insert");
            m.charge(ChargeKind::ReadTx, 4);
            m.charge(ChargeKind::Lookups, 4);
        }
        m.charge(ChargeKind::Rounds, 2);
        let attr = obs::attr::stop();
        // Conservation: the attribution totals equal the Metrics deltas.
        assert_eq!(attr.total(ChargeKind::ReadTx), m.read_transactions);
        assert_eq!(attr.total(ChargeKind::Lookups), m.lookups);
        assert_eq!(attr.total(ChargeKind::Rounds), m.rounds);
        assert_eq!(
            attr.get("kernel/insert").unwrap().get(ChargeKind::ReadTx),
            4
        );
        // The un-scoped round tick lands at the root.
        assert_eq!(attr.get("").unwrap().get(ChargeKind::Rounds), 2);
    }

    #[test]
    fn default_is_all_zero() {
        let m = Metrics::default();
        assert_eq!(m.transactions(), 0);
        assert_eq!(m.ops, 0);
    }
}
