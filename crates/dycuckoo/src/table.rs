//! The public DyCuckoo table: batched operations, resize triggering, and
//! accounting.

use gpu_sim::{Metrics, SimContext};

use crate::config::{Config, BUCKET_SLOTS};
use crate::error::{Error, Result};
use crate::hashfn::UniversalHash;
use crate::ops::insert::{insert_batch as run_insert, InsertOp, InsertOutcome};
use crate::ops::{delete::delete_batch as run_delete, find::find_batch as run_find};
use crate::rehash;
use crate::resize::{self, ResizeOp};
use crate::stash::Stash;
use crate::stats::{SubTableStats, TableStats};
use crate::subtable::SubTable;
use crate::two_layer::PairHash;

/// Operations processed between filled-factor checks within one batch.
/// Keeps θ from badly overshooting β in huge batches while preserving the
/// paper's batch-granular resize semantics at typical batch sizes.
const RESIZE_CHECK_INTERVAL: usize = 1 << 16;

/// Cap on consecutive resize operations while rebalancing; validated
/// configurations converge in a handful.
const MAX_RESIZE_ITERS: u32 = 64;

/// Cap on upsize-and-retry cycles for failed inserts.
const MAX_INSERT_RETRIES: u32 = 40;

/// Immutable shape shared by all kernels: configuration and hash functions.
/// Hash functions are fixed at construction and survive every resize — the
/// bucket index is just the raw hash reduced to the current table size.
pub(crate) struct TableShape {
    pub cfg: Config,
    pub pair: PairHash,
    pub hashes: Vec<UniversalHash>,
}

/// The candidate subtables a key may reside in (a tiny fixed-capacity set:
/// 2 for the pair-based layerings, `d` for plain d-ary cuckoo).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidates {
    tables: [u8; MAX_TABLES],
    len: u8,
}

/// Upper bound on `d` (keeps the candidate set a small copyable array).
pub const MAX_TABLES: usize = 16;

impl Candidates {
    fn pair(i: usize, j: usize) -> Self {
        let mut tables = [0u8; MAX_TABLES];
        tables[0] = i as u8;
        tables[1] = j as u8;
        Self { tables, len: 2 }
    }

    fn all(d: usize) -> Self {
        let mut tables = [0u8; MAX_TABLES];
        for (t, slot) in tables.iter_mut().enumerate().take(d) {
            *slot = t as u8;
        }
        Self {
            tables,
            len: d as u8,
        }
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn get(&self, i: usize) -> usize {
        debug_assert!(i < self.len());
        self.tables[i] as usize
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.tables[..self.len()].iter().map(|&t| t as usize)
    }

    pub fn contains(&self, t: usize) -> bool {
        self.iter().any(|c| c == t)
    }

    /// Position of table `t` within the candidate list.
    pub fn position(&self, t: usize) -> Option<usize> {
        self.iter().position(|c| c == t)
    }

    pub fn as_slice_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl TableShape {
    /// The subtables that may hold `key`, per the configured layering.
    pub fn candidates(&self, key: u32) -> Candidates {
        match self.cfg.layering {
            crate::config::Layering::TwoLayer => {
                let (i, j) = self.pair.pair_of(key);
                Candidates::pair(i, j)
            }
            crate::config::Layering::DisjointPairs => {
                let half = self.cfg.num_tables / 2;
                let p = (self.pair.raw(key) % half as u64) as usize;
                Candidates::pair(2 * p, 2 * p + 1)
            }
            crate::config::Layering::PlainD => Candidates::all(self.cfg.num_tables),
        }
    }

    /// Where a key evicted from subtable `t` goes next. For the pair-based
    /// layerings this is the pair's other member; for plain d-ary cuckoo it
    /// is a steered choice among the other subtables. `excluded` (a
    /// subtable mid-downsize) is avoided where legal; `None` means the key
    /// has no admissible destination.
    pub fn evict_destination(
        &self,
        tables: &[SubTable],
        key: u32,
        t: usize,
        excluded: Option<usize>,
        salt: u64,
    ) -> Option<usize> {
        let cands = self.candidates(key);
        debug_assert!(cands.contains(t), "key {key} not homed in table {t}");
        let viable: Vec<usize> = cands
            .iter()
            .filter(|&c| c != t && Some(c) != excluded)
            .collect();
        match viable.len() {
            0 => None,
            1 => Some(viable[0]),
            _ => Some(crate::distribute::choose_among(
                self.cfg.distribution,
                tables,
                &viable,
                self.cfg.seed,
                key,
                salt,
            )),
        }
    }
}

/// One structural resize performed while processing a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ResizeEvent {
    /// What was resized.
    pub op: ResizeOp,
    /// Bucket count before.
    pub old_buckets: usize,
    /// Bucket count after.
    pub new_buckets: usize,
    /// KVs rehashed within the resized subtable.
    pub moved: u64,
    /// KVs pushed out to partner subtables (downsizing only).
    pub residuals: u64,
}

/// Outcome of one batched operation, including any resizes it triggered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Operations submitted.
    pub attempted: usize,
    /// KVs newly inserted.
    pub inserted: u64,
    /// KVs that updated an existing key.
    pub updated: u64,
    /// Keys erased (delete batches).
    pub deleted: u64,
    /// Upsize-and-retry cycles needed for failed inserts.
    pub retries: u32,
    /// Resizes performed during/after the batch.
    pub resizes: Vec<ResizeEvent>,
}

impl BatchReport {
    /// Whether this batch stalled on structural work (a resize ran or an
    /// insert needed upsize-and-retry cycles). Service layers use this to
    /// count resize stalls per shard.
    pub fn resize_stall(&self) -> bool {
        !self.resizes.is_empty() || self.retries > 0
    }

    /// Total KVs moved by resizes during the batch (rehashed plus pushed
    /// to partner subtables) — the structural-work volume the batch paid
    /// for beyond its own operations.
    pub fn total_moved(&self) -> u64 {
        self.resizes.iter().map(|e| e.moved + e.residuals).sum()
    }
}

/// The dynamic two-layer cuckoo hash table of the paper.
///
/// All operations are batched and charged to a [`SimContext`], whose metrics
/// and cost model yield the simulated throughput. Keys and values are `u32`;
/// key `0` is reserved as the empty sentinel.
///
/// ```
/// use gpu_sim::SimContext;
/// use dycuckoo::{Config, DyCuckoo};
///
/// let mut sim = SimContext::new();
/// let mut table = DyCuckoo::new(Config::default(), &mut sim).unwrap();
/// table.insert_batch(&mut sim, &[(1, 10), (2, 20)]).unwrap();
/// let found = table.find_batch(&mut sim, &[1, 2, 3]);
/// assert_eq!(found, vec![Some(10), Some(20), None]);
/// ```
pub struct DyCuckoo {
    shape: TableShape,
    tables: Vec<SubTable>,
    /// Optional overflow stash (the paper's future-work mitigation for
    /// upsize cascades); `None` when `stash_capacity == 0`.
    stash: Option<Stash>,
    op_counter: u64,
}

impl DyCuckoo {
    /// Create a table with `cfg.initial_buckets` buckets per subtable.
    pub fn new(cfg: Config, sim: &mut SimContext) -> Result<Self> {
        cfg.validate()?;
        let pair = PairHash::new(cfg.seed ^ 0x9E37_79B9, cfg.num_tables);
        let hashes = (0..cfg.num_tables)
            .map(|i| UniversalHash::from_seed(cfg.seed.wrapping_add(0x517C_C1B7_2722_0A95u64.wrapping_mul(i as u64 + 1))))
            .collect();
        let tables: Vec<SubTable> = (0..cfg.num_tables)
            .map(|_| SubTable::new(cfg.initial_buckets))
            .collect();
        for t in &tables {
            sim.device.alloc(t.device_bytes())?;
        }
        let stash = if cfg.stash_capacity > 0 {
            let s = Stash::new(cfg.stash_capacity);
            sim.device.alloc(s.device_bytes())?;
            Some(s)
        } else {
            None
        };
        Ok(Self {
            shape: TableShape { cfg, pair, hashes },
            tables,
            stash,
            op_counter: 0,
        })
    }

    /// Create a table pre-sized so that `items` keys load it to roughly
    /// `target_fill` (used by the static experiments, which fix the memory
    /// budget up front).
    ///
    /// Because the hash reduces modulo the bucket count, sizes are not
    /// restricted to powers of two: an equal even split tracks the budget
    /// almost exactly, making filled-factor sweeps comparable across `d`.
    pub fn with_capacity(
        mut cfg: Config,
        items: usize,
        target_fill: f64,
        sim: &mut SimContext,
    ) -> Result<Self> {
        let sizes = mixed_bucket_sizes(items, cfg.num_tables, target_fill);
        cfg.initial_buckets = sizes[0];
        cfg.validate()?;
        let mut table = Self::new(cfg, sim)?;
        for (i, &sz) in sizes.iter().enumerate() {
            if sz != table.tables[i].n_buckets() {
                sim.device.free(table.tables[i].device_bytes())?;
                sim.device.alloc(SubTable::device_bytes_for(sz))?;
                table.tables[i] = SubTable::new(sz);
            }
        }
        Ok(table)
    }

    /// The table's configuration.
    pub fn config(&self) -> &Config {
        &self.shape.cfg
    }

    /// Set the within-round warp ordering for all subsequent kernel
    /// launches. Purely an interleaving choice: contents and final state
    /// stay semantically equivalent, only contention patterns (and thus
    /// metrics) may differ. Used by the schedule-exploration harness.
    pub fn set_schedule(&mut self, policy: gpu_sim::SchedulePolicy) {
        self.shape.cfg.schedule = policy;
    }

    /// Number of live KV pairs (including any stashed overflow).
    pub fn len(&self) -> u64 {
        self.tables.iter().map(|t| t.occupied()).sum::<u64>()
            + self.stash.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// KV pairs currently parked in the overflow stash (0 without a stash).
    pub fn stashed(&self) -> usize {
        self.stash.as_ref().map_or(0, |s| s.len())
    }

    /// Whether the table holds no KV pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overall filled factor `θ`.
    pub fn fill_factor(&self) -> f64 {
        resize::overall_fill(&self.tables)
    }

    /// Total key slots across all subtables.
    pub fn capacity_slots(&self) -> u64 {
        self.tables.iter().map(|t| t.capacity_slots()).sum()
    }

    /// Slots that can still be filled before θ crosses β (negative when
    /// already above it). A batching front-end can cap insert batches to
    /// this headroom so one flush does not force multiple resizes.
    pub fn headroom_slots(&self) -> i64 {
        (self.shape.cfg.beta * self.capacity_slots() as f64) as i64 - self.len() as i64
    }

    /// Device bytes currently held.
    pub fn device_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.device_bytes()).sum::<u64>()
            + self.stash.as_ref().map_or(0, |s| s.device_bytes())
    }

    /// Snapshot of per-subtable statistics.
    pub fn stats(&self) -> TableStats {
        let per_table: Vec<SubTableStats> = self
            .tables
            .iter()
            .map(|t| SubTableStats {
                n_buckets: t.n_buckets(),
                occupied: t.occupied(),
                capacity_slots: t.capacity_slots(),
                fill: t.fill_factor(),
            })
            .collect();
        TableStats {
            num_tables: self.tables.len(),
            occupied: self.len(),
            capacity_slots: self.tables.iter().map(|t| t.capacity_slots()).sum(),
            fill: self.fill_factor(),
            device_bytes: self.device_bytes(),
            per_table,
        }
    }

    /// Release the table's device memory. (The simulator cannot hook `Drop`
    /// because freeing needs the [`SimContext`].)
    pub fn release(self, sim: &mut SimContext) -> Result<()> {
        for t in &self.tables {
            sim.device.free(t.device_bytes())?;
        }
        if let Some(s) = &self.stash {
            sim.device.free(s.device_bytes())?;
        }
        Ok(())
    }

    /// Insert a batch of KV pairs. Duplicate handling follows
    /// [`crate::DupPolicy`]; resizes triggered by the batch are reported.
    pub fn insert_batch(&mut self, sim: &mut SimContext, kvs: &[(u32, u32)]) -> Result<BatchReport> {
        if kvs.iter().any(|&(k, _)| k == 0) {
            return Err(Error::ZeroKey);
        }
        let mut report = BatchReport {
            attempted: kvs.len(),
            ..BatchReport::default()
        };
        sim.metrics.ops += kvs.len() as u64;
        // Stashed keys are updated in place so a key never lives in both
        // the stash and a subtable.
        let filtered: Vec<(u32, u32)>;
        let mut rest: &[(u32, u32)] = kvs;
        if self.stash.as_ref().is_some_and(|s| !s.is_empty()) {
            let stash = self.stash.as_mut().expect("checked above");
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            filtered = kvs
                .iter()
                .copied()
                .filter(|&(k, v)| {
                    let in_stash = stash.update(k, v, &mut ctx);
                    if in_stash {
                        report.updated += 1;
                    }
                    !in_stash
                })
                .collect();
            ctx.finish();
            rest = &filtered;
        }
        while !rest.is_empty() {
            // Adaptive chunking: insert only up to the headroom below β
            // before re-checking the filled factor, so a huge batch cannot
            // drive the table far past its bound (where every bucket is
            // full and eviction chains explode) between checks.
            let step = (self.headroom_slots().max(512) as usize)
                .min(RESIZE_CHECK_INTERVAL)
                .min(rest.len());
            let (chunk, tail) = rest.split_at(step);
            rest = tail;
            let ops: Vec<InsertOp> = chunk
                .iter()
                .map(|&(k, v)| {
                    self.op_counter += 1;
                    InsertOp::fresh(k, v, self.op_counter)
                })
                .collect();
            let out = run_insert(&mut self.tables, &self.shape, ops, None, &mut sim.metrics);
            report.inserted += out.inserted;
            report.updated += out.updated;
            self.retry_failed(sim, out, &mut report)?;
            self.rebalance(sim, resize::Direction::GrowOnly, &mut report.resizes)?;
        }
        self.debug_verify("insert_batch");
        Ok(report)
    }

    /// Look up a batch of keys; returns one `Option<value>` per key.
    pub fn find_batch(&self, sim: &mut SimContext, keys: &[u32]) -> Vec<Option<u32>> {
        sim.metrics.ops += keys.len() as u64;
        let mut results = run_find(&self.tables, &self.shape, keys, &mut sim.metrics);
        if let Some(stash) = self.stash.as_ref().filter(|s| !s.is_empty()) {
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            for (key, r) in keys.iter().zip(results.iter_mut()) {
                if r.is_none() {
                    *r = stash.find(*key, &mut ctx);
                }
            }
            ctx.finish();
        }
        results
    }

    /// Delete a batch of keys, reporting erased count and any downsizes.
    pub fn delete_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Result<BatchReport> {
        let mut report = BatchReport {
            attempted: keys.len(),
            ..BatchReport::default()
        };
        sim.metrics.ops += keys.len() as u64;
        report.deleted = run_delete(&mut self.tables, &self.shape, keys, &mut sim.metrics);
        if self.stash.as_ref().is_some_and(|s| !s.is_empty()) {
            let stash = self.stash.as_mut().expect("checked above");
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            for &key in keys {
                if stash.erase(key, &mut ctx) {
                    report.deleted += 1;
                }
                if stash.is_empty() {
                    break;
                }
            }
            ctx.finish();
        }
        self.rebalance(sim, resize::Direction::Both, &mut report.resizes)?;
        self.debug_verify("delete_batch");
        Ok(report)
    }

    /// Convenience single-key lookup (one-op batch).
    pub fn get(&self, sim: &mut SimContext, key: u32) -> Option<u32> {
        self.find_batch(sim, &[key])[0]
    }

    /// Upsize-and-retry loop for operations that exceeded the eviction
    /// limit — the paper's "insertion failure triggers resizing".
    fn retry_failed(
        &mut self,
        sim: &mut SimContext,
        mut out: InsertOutcome,
        report: &mut BatchReport,
    ) -> Result<()> {
        while !out.failed.is_empty() {
            // Stash first: a handful of unplaceable keys should not force a
            // structural resize (the future-work mitigation).
            if let Some(stash) = self.stash.as_mut() {
                let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
                out.failed.retain(|op| {
                    let stashed = stash.push(op.key, op.val, &mut ctx);
                    if stashed {
                        report.inserted += 1;
                    }
                    !stashed
                });
                ctx.finish();
                if out.failed.is_empty() {
                    return Ok(());
                }
            }
            report.retries += 1;
            if report.retries > MAX_INSERT_RETRIES {
                return Err(Error::InsertStuck {
                    failed_ops: out.failed.len(),
                });
            }
            let event = self.apply_resize(ResizeOp::Upsize(resize::upsize_candidate(&self.tables)), sim)?;
            report.resizes.push(event);
            // Restart each failed op fresh: it carries whatever KV its
            // eviction chain held, which re-routes through the two-layer
            // pair of that key.
            let retry_ops: Vec<InsertOp> = out
                .failed
                .iter()
                .map(|op| {
                    self.op_counter += 1;
                    InsertOp::reinsert(op.key, op.val, self.op_counter)
                })
                .collect();
            out = run_insert(&mut self.tables, &self.shape, retry_ops, None, &mut sim.metrics);
            report.inserted += out.inserted;
            report.updated += out.updated;
        }
        Ok(())
    }

    /// Resize until θ returns to `[α, β]` (insert batches grow only; see
    /// [`resize::Direction`]).
    fn rebalance(
        &mut self,
        sim: &mut SimContext,
        dir: resize::Direction,
        events: &mut Vec<ResizeEvent>,
    ) -> Result<()> {
        for _ in 0..MAX_RESIZE_ITERS {
            match resize::decide(&self.tables, self.shape.cfg.alpha, self.shape.cfg.beta, dir) {
                None => return Ok(()),
                Some(op) => events.push(self.apply_resize(op, sim)?),
            }
        }
        Err(Error::ResizeDiverged {
            iterations: MAX_RESIZE_ITERS,
        })
    }

    /// Perform one resize operation, including residual placement for
    /// downsizing, then drain the overflow stash back into the subtables
    /// (a resize has just changed where keys belong or made room).
    fn apply_resize(&mut self, op: ResizeOp, sim: &mut SimContext) -> Result<ResizeEvent> {
        let recording = obs::is_enabled();
        if recording {
            let (grow, i) = match op {
                ResizeOp::Upsize(i) => (true, i),
                ResizeOp::Downsize(i) => (false, i),
            };
            obs::span_begin(obs::Event::ResizeBegin {
                grow,
                table: i as u8,
                old_buckets: self.tables[i].n_buckets() as u64,
            });
        }
        let result = self.apply_resize_and_drain(op, sim);
        if recording {
            // Close the span even on error so the span stack stays balanced.
            let (new_buckets, moved, residuals) = match &result {
                Ok(e) => (e.new_buckets as u64, e.moved, e.residuals),
                Err(_) => (0, 0, 0),
            };
            obs::span_end(obs::Event::ResizeEnd {
                new_buckets,
                moved,
                residuals,
            });
        }
        result
    }

    /// The resize itself plus the post-resize stash drain (the span-free
    /// body of [`Self::apply_resize`]).
    fn apply_resize_and_drain(&mut self, op: ResizeOp, sim: &mut SimContext) -> Result<ResizeEvent> {
        let event = self.apply_resize_inner(op, sim)?;
        if self.stash.as_ref().is_some_and(|s| !s.is_empty()) {
            let stash = self.stash.as_mut().expect("checked above");
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            let drained = stash.drain(&mut ctx);
            ctx.finish();
            let ops: Vec<InsertOp> = drained
                .into_iter()
                .map(|(k, v)| {
                    self.op_counter += 1;
                    InsertOp::reinsert(k, v, self.op_counter)
                })
                .collect();
            let out = run_insert(&mut self.tables, &self.shape, ops, None, &mut sim.metrics);
            // Whatever still fails goes straight back to the stash (room is
            // guaranteed: we just drained it).
            if !out.failed.is_empty() {
                let stash = self.stash.as_mut().expect("still present");
                let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
                for op in &out.failed {
                    let ok = stash.push(op.key, op.val, &mut ctx);
                    debug_assert!(ok, "stash was just drained");
                }
                ctx.finish();
            }
        }
        Ok(event)
    }

    fn apply_resize_inner(&mut self, op: ResizeOp, sim: &mut SimContext) -> Result<ResizeEvent> {
        match op {
            ResizeOp::Upsize(i) => {
                let old = self.tables[i].n_buckets();
                let rep = rehash::upsize(&mut self.tables, i, &self.shape, sim)?;
                Ok(ResizeEvent {
                    op,
                    old_buckets: old,
                    new_buckets: old * 2,
                    moved: rep.moved,
                    residuals: 0,
                })
            }
            ResizeOp::Downsize(i) => {
                let old = self.tables[i].n_buckets();
                let (rep, residuals) =
                    rehash::downsize_collect(&mut self.tables, i, sim)?;
                let n_res = residuals.len() as u64;
                if !residuals.is_empty() {
                    // Residuals go to their partner subtables; the
                    // downsizing table is excluded within this "kernel".
                    let out = run_insert(
                        &mut self.tables,
                        &self.shape,
                        residuals,
                        Some(i),
                        &mut sim.metrics,
                    );
                    // Leftovers (pathological) are retried without the
                    // exclusion — the downsize itself has completed.
                    let mut leftovers = out.failed;
                    let mut guard = 0;
                    while !leftovers.is_empty() {
                        guard += 1;
                        if guard > MAX_INSERT_RETRIES {
                            return Err(Error::InsertStuck {
                                failed_ops: leftovers.len(),
                            });
                        }
                        let target = resize::upsize_candidate(&self.tables);
                        rehash::upsize(&mut self.tables, target, &self.shape, sim)?;
                        let retry: Vec<InsertOp> = leftovers
                            .iter()
                            .map(|f| {
                                self.op_counter += 1;
                                InsertOp::reinsert(f.key, f.val, self.op_counter)
                            })
                            .collect();
                        leftovers =
                            run_insert(&mut self.tables, &self.shape, retry, None, &mut sim.metrics)
                                .failed;
                    }
                }
                Ok(ResizeEvent {
                    op,
                    old_buckets: old,
                    new_buckets: old / 2,
                    moved: rep.moved,
                    residuals: n_res,
                })
            }
        }
    }

    /// Force one resize operation regardless of θ (used by the F7 resize
    /// experiment, which measures a single upsize/downsize in isolation).
    pub fn force_resize(&mut self, sim: &mut SimContext, op: ResizeOp) -> Result<ResizeEvent> {
        let event = self.apply_resize(op, sim);
        self.debug_verify("force_resize");
        event
    }

    /// The *naive* alternative the paper's resize experiment compares
    /// against: resize subtable `idx` by draining all its entries and
    /// re-inserting them one by one through the normal insert kernel
    /// (Algorithm 1), instead of the conflict-free rehash. Returns the
    /// number of KVs moved.
    pub fn rehash_subtable_naive(
        &mut self,
        sim: &mut SimContext,
        idx: usize,
        grow: bool,
    ) -> Result<u64> {
        let old = &self.tables[idx];
        let old_buckets = old.n_buckets();
        let new_buckets = if grow {
            old_buckets * 2
        } else {
            (old_buckets / 2).max(1)
        };
        // Drain: read every key and value line of the subtable.
        sim.metrics.read_transactions += 2 * old_buckets as u64;
        let drained: Vec<(u32, u32)> = old.iter_live().collect();
        let old_bytes = old.device_bytes();
        sim.device.alloc(SubTable::device_bytes_for(new_buckets))?;
        self.tables[idx] = SubTable::new(new_buckets);
        sim.device.free(old_bytes)?;
        // Re-insert through the ordinary voter kernel: each key routes
        // through its two-layer pair (which contains `idx`), competing with
        // whatever is already in the partner subtables. The naive strategy
        // has no Theorem-1 steering (that is part of what it lacks), so
        // half the reinserts land in the other, possibly nearly full,
        // subtable — which is exactly why the paper finds naive upsizing
        // "severely limited".
        let naive_shape = TableShape {
            cfg: Config {
                distribution: crate::config::Distribution::Uniform,
                ..self.shape.cfg
            },
            pair: self.shape.pair,
            hashes: self.shape.hashes.clone(),
        };
        let moved = drained.len() as u64;
        let ops: Vec<InsertOp> = drained
            .into_iter()
            .map(|(k, v)| {
                self.op_counter += 1;
                InsertOp::fresh(k, v, self.op_counter)
            })
            .collect();
        let out = run_insert(&mut self.tables, &naive_shape, ops, None, &mut sim.metrics);
        let mut report = BatchReport::default();
        self.retry_failed(sim, out, &mut report)?;
        Ok(moved)
    }

    /// The policy invariant: no subtable more than twice any other.
    pub fn size_ratio_ok(&self) -> bool {
        resize::size_ratio_invariant(&self.tables)
    }

    /// Verify internal accounting (occupancy counters vs. actual slots and
    /// the two-layer residency invariant). Test/debug helper; O(capacity).
    pub fn verify_integrity(&self) -> std::result::Result<(), String> {
        if let Some(stash) = &self.stash {
            // No key may live in both the stash and a subtable.
            let mut probe = gpu_sim::Metrics::default();
            let mut ctx = gpu_sim::RoundCtx::new(&mut probe);
            for t in &self.tables {
                for (k, _) in t.iter_live() {
                    if stash.find(k, &mut ctx).is_some() {
                        return Err(format!("key {k} resides in a subtable AND the stash"));
                    }
                }
            }
            ctx.finish();
        }
        for (i, t) in self.tables.iter().enumerate() {
            if t.occupied() != t.recount() {
                return Err(format!(
                    "subtable {i}: occupancy counter {} but {} live slots",
                    t.occupied(),
                    t.recount()
                ));
            }
            for b in 0..t.n_buckets() {
                for (s, &k) in t.bucket_keys(b).iter().enumerate() {
                    if k == crate::subtable::EMPTY_KEY {
                        continue;
                    }
                    if !self.shape.candidates(k).contains(i) {
                        return Err(format!(
                            "key {k} in subtable {i} bucket {b} slot {s}, outside its candidate set {:?}",
                            self.shape.candidates(k).as_slice_vec()
                        ));
                    }
                    let expect = self.shape.hashes[i].bucket(k, t.n_buckets());
                    if expect != b {
                        return Err(format!(
                            "key {k} in subtable {i} bucket {b}, expected bucket {expect}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Raw subtables, for experiments that need structural detail (e.g. the
    /// resize-throughput comparison reads exact per-subtable sizes).
    pub fn subtables(&self) -> &[SubTable] {
        &self.tables
    }

    /// Debug-build invariant sweep after every mutating batch operation, so
    /// every existing test doubles as an integrity check and corruption is
    /// caught at the batch boundary where it is still attributable. Skipped
    /// under deliberate fault injection — a lost update is a *semantic*
    /// defect for the oracle, not a structural one for this sweep.
    #[inline]
    fn debug_verify(&self, when: &str) {
        if cfg!(debug_assertions) && !self.shape.cfg.inject_lock_elision {
            if let Err(e) = self.verify_integrity() {
                panic!("integrity violated after {when}: {e}");
            }
        }
    }
}

/// Smallest power-of-two bucket count per subtable such that `items` keys
/// fill `d` such subtables to at most `target_fill` (uniform sizing; see
/// [`mixed_bucket_sizes`] for the finer-grained allocation
/// [`DyCuckoo::with_capacity`] uses).
pub fn buckets_for_load(items: usize, d: usize, target_fill: f64) -> usize {
    assert!(target_fill > 0.0 && target_fill <= 1.0);
    let slots_needed = (items as f64 / target_fill).ceil() as usize;
    let per_table = slots_needed.div_ceil(d * BUCKET_SLOTS);
    per_table.next_power_of_two().max(1)
}

/// Per-subtable bucket counts whose total capacity covers
/// `items / target_fill` slots as tightly as possible: an equal split,
/// rounded up to even counts so every subtable can later halve cleanly.
pub fn mixed_bucket_sizes(items: usize, d: usize, target_fill: f64) -> Vec<usize> {
    assert!(target_fill > 0.0 && target_fill <= 1.0 && d >= 1);
    let slots_needed = (items as f64 / target_fill).ceil() as usize;
    let buckets_needed = slots_needed.div_ceil(BUCKET_SLOTS).max(1);
    let per_table = buckets_needed.div_ceil(d).next_multiple_of(2);
    vec![per_table; d]
}

/// Simulated elapsed time and throughput of a window of metrics — a small
/// convenience the harness uses around batched calls.
pub fn window_mops(sim: &SimContext, window: &Metrics, ops: u64) -> f64 {
    gpu_sim::CostModel::new(sim.device.config()).mops(ops, window)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Config {
        Config {
            initial_buckets: 4,
            ..Config::default()
        }
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=500u32).map(|k| (k, k * 3)).collect();
        let rep = t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(rep.inserted, 500);
        assert_eq!(t.len(), 500);
        let keys: Vec<u32> = (1..=500).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, v) in keys.iter().zip(found) {
            assert_eq!(v, Some(k * 3));
        }
        t.verify_integrity().unwrap();
    }

    #[test]
    fn missing_keys_return_none() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(7, 70)]).unwrap();
        assert_eq!(t.find_batch(&mut sim, &[8, 9]), vec![None, None]);
    }

    #[test]
    fn zero_key_rejected() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        assert_eq!(t.insert_batch(&mut sim, &[(0, 1)]), Err(Error::ZeroKey));
    }

    #[test]
    fn upsert_updates_in_place() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(5, 1)]).unwrap();
        let rep = t.insert_batch(&mut sim, &[(5, 2)]).unwrap();
        assert_eq!(rep.updated, 1);
        assert_eq!(rep.inserted, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&mut sim, 5), Some(2));
    }

    #[test]
    fn delete_removes_keys_and_reports_count() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=100u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let rep = t.delete_batch(&mut sim, &[1, 2, 3, 999]).unwrap();
        assert_eq!(rep.deleted, 3);
        assert_eq!(t.len(), 97);
        assert_eq!(t.get(&mut sim, 1), None);
        assert_eq!(t.get(&mut sim, 4), Some(4));
        t.verify_integrity().unwrap();
    }

    #[test]
    fn growth_keeps_fill_in_bounds_and_ratio_invariant() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        for round in 0..20u32 {
            let kvs: Vec<(u32, u32)> =
                (0..200u32).map(|i| (round * 200 + i + 1, i)).collect();
            t.insert_batch(&mut sim, &kvs).unwrap();
            assert!(t.size_ratio_ok(), "size ratio violated at round {round}");
            assert!(
                t.fill_factor() <= t.config().beta + 1e-9,
                "θ = {} exceeds β after rebalance",
                t.fill_factor()
            );
        }
        assert_eq!(t.len(), 4000);
        t.verify_integrity().unwrap();
        // Everything findable after many resizes.
        let keys: Vec<u32> = (1..=4000).collect();
        let found = t.find_batch(&mut sim, &keys);
        assert!(found.iter().all(|f| f.is_some()));
    }

    #[test]
    fn shrink_after_mass_delete() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=2000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let bytes_before = t.device_bytes();
        let dels: Vec<u32> = (1..=1900).collect();
        let rep = t.delete_batch(&mut sim, &dels).unwrap();
        assert_eq!(rep.deleted, 1900);
        assert!(
            !rep.resizes.is_empty(),
            "mass deletion should trigger downsizing"
        );
        assert!(t.device_bytes() < bytes_before);
        assert!(t.fill_factor() >= t.config().alpha - 1e-9);
        // Survivors still present.
        let keys: Vec<u32> = (1901..=2000).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
        t.verify_integrity().unwrap();
    }

    #[test]
    fn with_capacity_hits_target_fill() {
        for d in [2usize, 3, 4, 5, 6] {
            let mut sim = SimContext::new();
            let cfg = Config {
                num_tables: d,
                ..Config::default()
            };
            let t = DyCuckoo::with_capacity(cfg, 100_000, 0.85, &mut sim).unwrap();
            let slots: u64 = t.stats().capacity_slots;
            let fill = 100_000.0 / slots as f64;
            assert!(fill <= 0.85 + 1e-9, "d={d}: fill {fill}");
            // Equal even-count sizing tracks the budget within a whisker.
            assert!(fill > 0.85 * 0.98, "d={d}: fill only {fill}");
            assert!(t.size_ratio_ok(), "d={d}");
        }
    }

    #[test]
    fn buckets_for_load_is_minimal_power_of_two() {
        assert_eq!(buckets_for_load(1, 4, 1.0), 1);
        // 10_000 items at θ=0.85 over 4 tables: 11765 slots → 92 buckets/table → 128.
        assert_eq!(buckets_for_load(10_000, 4, 0.85), 128);
    }

    #[test]
    fn mixed_bucket_sizes_cover_budget_tightly() {
        for d in [2usize, 3, 4, 5, 7] {
            for items in [100usize, 5_000, 77_777, 1_000_000] {
                let sizes = mixed_bucket_sizes(items, d, 0.85);
                assert_eq!(sizes.len(), d);
                assert!(sizes.iter().all(|&s| s % 2 == 0), "{sizes:?}");
                let total_slots: usize = sizes.iter().sum::<usize>() * BUCKET_SLOTS;
                let needed = (items as f64 / 0.85).ceil() as usize;
                assert!(total_slots >= needed, "d={d} items={items}: {sizes:?}");
                // Within one even bucket per table of the requirement.
                assert!(
                    total_slots <= needed + 3 * d * BUCKET_SLOTS,
                    "d={d} items={items}: over-provisioned {sizes:?}"
                );
            }
        }
    }

    #[test]
    fn find_is_at_most_two_lookups_per_key() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=1000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        sim.take_metrics();
        let keys: Vec<u32> = (1..=1000).collect();
        t.find_batch(&mut sim, &keys);
        let m = sim.take_metrics();
        assert!(
            m.lookups <= 2 * 1000,
            "find used {} lookups for 1000 keys",
            m.lookups
        );
    }

    #[test]
    fn force_upsize_then_downsize_roundtrip() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=300u32).map(|k| (k, k + 1)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let ev = t.force_resize(&mut sim, ResizeOp::Upsize(0)).unwrap();
        assert_eq!(ev.new_buckets, ev.old_buckets * 2);
        t.verify_integrity().unwrap();
        let ev = t.force_resize(&mut sim, ResizeOp::Downsize(0)).unwrap();
        assert_eq!(ev.new_buckets, ev.old_buckets / 2);
        t.verify_integrity().unwrap();
        let keys: Vec<u32> = (1..=300).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (i, f) in found.iter().enumerate() {
            assert_eq!(*f, Some(i as u32 + 2), "key {} lost in resize", i + 1);
        }
    }

    #[test]
    fn paper_insert_policy_still_finds_keys() {
        let mut sim = SimContext::new();
        let cfg = Config {
            dup_policy: crate::config::DupPolicy::PaperInsert,
            initial_buckets: 8,
            ..Config::default()
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=800u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let keys: Vec<u32> = (1..=800).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }

    #[test]
    fn naive_rehash_preserves_all_keys() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=600u32).map(|k| (k, k + 9)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let moved = t.rehash_subtable_naive(&mut sim, 1, true).unwrap();
        assert!(moved > 0, "subtable 1 should have held entries");
        t.verify_integrity().unwrap();
        let keys: Vec<u32> = (1..=600).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (i, f) in found.iter().enumerate() {
            assert_eq!(*f, Some(i as u32 + 10), "key {} lost", i + 1);
        }
        // Shrink direction too.
        let moved = t.rehash_subtable_naive(&mut sim, 1, false).unwrap();
        assert!(moved > 0);
        t.verify_integrity().unwrap();
        let found = t.find_batch(&mut sim, &keys);
        assert!(found.iter().all(|f| f.is_some()));
    }

    #[test]
    fn plain_d_layering_roundtrip() {
        let mut sim = SimContext::new();
        let cfg = Config {
            layering: crate::config::Layering::PlainD,
            initial_buckets: 4,
            ..Config::default()
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=800u32).map(|k| (k, k + 3)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        t.verify_integrity().unwrap();
        let keys: Vec<u32> = (1..=800).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (i, f) in found.iter().enumerate() {
            assert_eq!(*f, Some(i as u32 + 4));
        }
        t.delete_batch(&mut sim, &keys).unwrap();
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn disjoint_pairs_layering_roundtrip() {
        let mut sim = SimContext::new();
        let cfg = Config {
            layering: crate::config::Layering::DisjointPairs,
            initial_buckets: 4,
            ..Config::default()
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=800u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        t.verify_integrity().unwrap();
        let keys: Vec<u32> = (1..=800).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }

    #[test]
    fn plain_d_find_probes_up_to_d_buckets() {
        let mut sim = SimContext::new();
        let cfg = Config {
            layering: crate::config::Layering::PlainD,
            initial_buckets: 4,
            ..Config::default()
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=500u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        // Misses must probe all d=4 candidate buckets, vs 2 for two-layer.
        sim.take_metrics();
        let misses: Vec<u32> = (1_000_001..1_001_001).collect();
        t.find_batch(&mut sim, &misses);
        let m = sim.take_metrics();
        assert_eq!(m.lookups, 4 * 1000, "plain-d misses probe d buckets");
    }

    #[test]
    fn voter_finishes_contended_batches_in_fewer_rounds() {
        // The voter's value is not fewer failed CAS attempts but not
        // *wasting* warp time while blocked: a spinning warp burns a whole
        // round per failure, a voting warp completes another lane's op.
        let run = |coordination| {
            let mut sim = SimContext::new();
            let cfg = Config {
                coordination,
                initial_buckets: 2,
                ..Config::default()
            };
            let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
            // The paper's celebrity scenario: each warp carries one op on a
            // hot key plus 31 ordinary ops. A spinning warp blocks its
            // ordinary ops behind the contended one.
            let kvs: Vec<(u32, u32)> = (0..4096u32)
                .map(|i| if i % 32 == 0 { (7, i) } else { (i + 100, i) })
                .collect();
            t.insert_batch(&mut sim, &kvs).unwrap();
            sim.take_metrics().rounds
        };
        let spin = run(crate::config::Coordination::Spin);
        let voter = run(crate::config::Coordination::Voter);
        assert!(
            spin > voter,
            "spinning should waste rounds (spin {spin} vs voter {voter})"
        );
    }

    fn stash_cfg() -> Config {
        Config {
            initial_buckets: 2,
            stash_capacity: 64,
            // A tiny eviction limit makes chains fail early so the stash
            // actually gets exercised.
            eviction_limit: 2,
            alpha: 0.0,
            beta: 1.0,
            ..Config::default()
        }
    }

    #[test]
    fn stash_absorbs_failed_chains_without_resizing() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(stash_cfg(), &mut sim).unwrap();
        // 2 buckets × 4 tables × 32 slots = 256 slots; pushing well past
        // capacity with resizing disabled (β = 1.0 means θ can reach 1.0)
        // must park the overflow in the stash instead of erroring.
        let kvs: Vec<(u32, u32)> = (1..=280u32).map(|k| (k, k)).collect();
        let rep = t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(rep.inserted + rep.updated, 280);
        assert!(t.stashed() > 0, "overflow should be stashed");
        assert!(rep.resizes.is_empty(), "no resizes while β = 1.0");
        let keys: Vec<u32> = (1..=280).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, f) in keys.iter().zip(found) {
            assert_eq!(f, Some(*k), "key {k} lost");
        }
        t.verify_integrity().unwrap();
    }

    #[test]
    fn stash_supports_update_and_delete() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(stash_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=280u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert!(t.stashed() > 0);
        // Update every key; stashed ones must update in place.
        let kvs2: Vec<(u32, u32)> = (1..=280u32).map(|k| (k, k + 1)).collect();
        let rep = t.insert_batch(&mut sim, &kvs2).unwrap();
        assert_eq!(rep.updated, 280);
        assert_eq!(t.len(), 280);
        let keys: Vec<u32> = (1..=280).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, f) in keys.iter().zip(found) {
            assert_eq!(f, Some(k + 1));
        }
        // Delete everything, stash included.
        let rep = t.delete_batch(&mut sim, &keys).unwrap();
        assert_eq!(rep.deleted, 280);
        assert_eq!(t.len(), 0);
        assert_eq!(t.stashed(), 0);
    }

    #[test]
    fn stash_drains_after_resize() {
        let mut sim = SimContext::new();
        let cfg = Config {
            stash_capacity: 64,
            eviction_limit: 2,
            initial_buckets: 2,
            ..Config::default() // real bounds: resizing enabled
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=2000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        // With resizing enabled, the table grows and the stash drains back;
        // at most a handful of keys may be parked transiently.
        assert!(
            t.stashed() < 32,
            "stash should drain after resizes, {} still parked",
            t.stashed()
        );
        let keys: Vec<u32> = (1..=2000).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
        t.verify_integrity().unwrap();
    }

    #[test]
    fn headroom_and_stall_hooks_track_batches() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let beta = t.config().beta;
        let before = t.headroom_slots();
        assert_eq!(before, (beta * t.capacity_slots() as f64) as i64);
        let kvs: Vec<(u32, u32)> = (1..=2000u32).map(|k| (k, k)).collect();
        let rep = t.insert_batch(&mut sim, &kvs).unwrap();
        // Growth to 2000 keys from 4-bucket subtables must have resized.
        assert!(rep.resize_stall());
        assert!(rep.total_moved() > 0);
        assert!(t.headroom_slots() >= 0, "rebalance restores headroom");
        assert_eq!(
            t.headroom_slots(),
            (beta * t.capacity_slots() as f64) as i64 - 2000
        );
        // A pure-read window causes no stall.
        let rep = t.delete_batch(&mut sim, &[]).unwrap();
        assert!(!rep.resize_stall());
        assert_eq!(rep.total_moved(), 0);
    }

    #[test]
    fn release_returns_device_memory() {
        let mut sim = SimContext::new();
        let t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let held = sim.device.allocated_bytes();
        assert!(held > 0);
        t.release(&mut sim).unwrap();
        assert_eq!(sim.device.allocated_bytes(), 0);
    }
}
