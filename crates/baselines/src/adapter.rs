//! [`GpuHashTable`] adapter for the DyCuckoo core, so the harness can drive
//! all schemes uniformly.

use gpu_sim::SimContext;

use dycuckoo::{Config, DyCuckoo};

use crate::api::{GpuHashTable, Result};

/// DyCuckoo wrapped in the common baseline interface.
pub struct DyCuckooTable {
    inner: DyCuckoo,
}

impl DyCuckooTable {
    /// Build from a DyCuckoo configuration.
    pub fn new(cfg: Config, sim: &mut SimContext) -> Result<Self> {
        Ok(Self {
            inner: DyCuckoo::new(cfg, sim)?,
        })
    }

    /// Build pre-sized for `items` keys at `target_fill`.
    pub fn with_capacity(
        cfg: Config,
        items: usize,
        target_fill: f64,
        sim: &mut SimContext,
    ) -> Result<Self> {
        Ok(Self {
            inner: DyCuckoo::with_capacity(cfg, items, target_fill, sim)?,
        })
    }

    /// Access the wrapped table (for DyCuckoo-specific statistics).
    pub fn inner(&self) -> &DyCuckoo {
        &self.inner
    }
}

impl GpuHashTable for DyCuckooTable {
    fn name(&self) -> &'static str {
        "DyCuckoo"
    }

    fn insert_batch(&mut self, sim: &mut SimContext, kvs: &[(u32, u32)]) -> Result<()> {
        self.inner.insert_batch(sim, kvs)?;
        Ok(())
    }

    fn find_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Vec<Option<u32>> {
        self.inner.find_batch(sim, keys)
    }

    fn delete_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Result<u64> {
        Ok(self.inner.delete_batch(sim, keys)?.deleted)
    }

    fn upsert_batch(
        &mut self,
        sim: &mut SimContext,
        kvs: &[(u32, u32)],
        rule: dycuckoo::MergeRule,
    ) -> Result<()> {
        self.inner.upsert_batch(sim, kvs, rule)?;
        Ok(())
    }

    fn supports_upsert(&self) -> bool {
        true
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn capacity_slots(&self) -> u64 {
        self.inner.stats().capacity_slots
    }

    fn device_bytes(&self) -> u64 {
        self.inner.device_bytes()
    }

    fn set_schedule(&mut self, policy: gpu_sim::SchedulePolicy) {
        self.inner.set_schedule(policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_roundtrip() {
        let mut sim = SimContext::new();
        let cfg = Config {
            initial_buckets: 4,
            ..Config::default()
        };
        let mut t = DyCuckooTable::new(cfg, &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(1, 2), (3, 4)]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.find_batch(&mut sim, &[1, 3, 5]),
            vec![Some(2), Some(4), None]
        );
        assert_eq!(t.delete_batch(&mut sim, &[1]).unwrap(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(), "DyCuckoo");
        assert!(t.supports_delete());
        assert!(t.fill_factor() > 0.0);
    }

    #[test]
    fn adapter_upsert_merges() {
        let mut sim = SimContext::new();
        let cfg = Config {
            initial_buckets: 4,
            ..Config::default()
        };
        let mut t = DyCuckooTable::new(cfg, &mut sim).unwrap();
        assert!(t.supports_upsert());
        t.upsert_batch(&mut sim, &[(1, 5), (1, 7)], dycuckoo::MergeRule::Add)
            .unwrap();
        assert_eq!(t.find_batch(&mut sim, &[1]), vec![Some(12)]);
    }
}
