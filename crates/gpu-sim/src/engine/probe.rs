//! Warp-cooperative probe helpers shared by every bucketized kernel.
//!
//! The pieces below used to be copy-pasted (or subtly re-derived) in each
//! table implementation: packing a batch into warps, rotating the voter
//! after a failed lock acquisition, and the randomized slot selection that
//! steers evictions. They are deterministic given their inputs, which is
//! what keeps every kernel replayable under schedule exploration.

use crate::warp::WARP_SIZE;

/// Pack a batch of per-lane operations into warps of 32.
pub fn pack_warps<T>(ops: impl IntoIterator<Item = T>) -> Vec<Vec<T>> {
    let mut warps: Vec<Vec<T>> = Vec::new();
    let mut cur: Vec<T> = Vec::with_capacity(WARP_SIZE);
    for op in ops {
        cur.push(op);
        if cur.len() == WARP_SIZE {
            warps.push(std::mem::replace(&mut cur, Vec::with_capacity(WARP_SIZE)));
        }
    }
    if !cur.is_empty() {
        warps.push(cur);
    }
    warps
}

/// Index of the `n`-th set lane (mod the number of set lanes) — the voter
/// rotation used after a failed lock acquisition, so a warp never spins on
/// the same contended bucket.
pub fn nth_active_lane(mask: u32, n: usize) -> usize {
    let count = mask.count_ones() as usize;
    debug_assert!(count > 0);
    let target = n % count;
    let mut seen = 0;
    for lane in 0..WARP_SIZE {
        if mask & (1 << lane) != 0 {
            if seen == target {
                return lane;
            }
            seen += 1;
        }
    }
    unreachable!("mask had set bits");
}

/// Sample an index with probability proportional to its weight, driven by
/// a pre-mixed 64-bit coin. Zero-weight entries are inadmissible; returns
/// `None` when every weight is zero. The floating-point tail falls back to
/// the last admissible entry, so a caller always gets an admissible index
/// when one exists.
///
/// This is the eviction-destination selector of the engine: DyCuckoo's
/// Theorem-1 steering computes the weights (`n_i / C(m_i, 2)` of each
/// slot's destination subtable) and this picks the victim slot.
pub fn weighted_index(weights: &[f64], coin: u64) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        return None;
    }
    let u = (coin >> 11) as f64 / (1u64 << 53) as f64 * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if w > 0.0 && u < acc {
            return Some(i);
        }
    }
    weights.iter().rposition(|&w| w > 0.0)
}

/// Pick a pseudo-random admissible index by scanning from a coin-derived
/// start offset (the uniform-steering counterpart of [`weighted_index`]).
pub fn rotated_index(n: usize, admissible: impl Fn(usize) -> bool, coin: u64) -> Option<usize> {
    debug_assert!(n > 0);
    let start = (coin as usize) % n;
    (0..n).map(|off| (start + off) % n).find(|&s| admissible(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_warps_chunks_by_32() {
        let warps = pack_warps(0..70);
        assert_eq!(warps.len(), 3);
        assert_eq!(warps[0].len(), 32);
        assert_eq!(warps[1].len(), 32);
        assert_eq!(warps[2].len(), 6);
        assert_eq!(warps[2], vec![64, 65, 66, 67, 68, 69]);
    }

    #[test]
    fn pack_warps_empty() {
        let warps: Vec<Vec<u32>> = pack_warps(std::iter::empty());
        assert!(warps.is_empty());
    }

    #[test]
    fn nth_active_rotates_through_set_lanes() {
        let mask = 0b1010_0100u32; // lanes 2, 5, 7
        assert_eq!(nth_active_lane(mask, 0), 2);
        assert_eq!(nth_active_lane(mask, 1), 5);
        assert_eq!(nth_active_lane(mask, 2), 7);
        assert_eq!(nth_active_lane(mask, 3), 2); // wraps
    }

    #[test]
    fn weighted_index_skips_zero_weights() {
        let w = [0.0, 0.0, 3.0, 0.0];
        for coin in 0..64u64 {
            assert_eq!(weighted_index(&w, coin.wrapping_mul(0x9E37)), Some(2));
        }
        assert_eq!(weighted_index(&[0.0; 4], 7), None);
        assert_eq!(weighted_index(&[], 7), None);
    }

    #[test]
    fn weighted_index_is_proportional() {
        let w = [1.0, 9.0];
        let heavy = (0..10_000u64)
            .filter(|&c| weighted_index(&w, c.wrapping_mul(0x9E37_79B9_7F4A_7C15)) == Some(1))
            .count();
        assert!(heavy > 8_500, "heavy index picked only {heavy}/10000");
    }

    #[test]
    fn rotated_index_finds_admissible() {
        assert_eq!(rotated_index(8, |s| s == 5, 3), Some(5));
        assert_eq!(rotated_index(8, |_| false, 3), None);
        // Different coins start at different offsets.
        let picks: std::collections::HashSet<usize> = (0..32u64)
            .filter_map(|c| rotated_index(8, |_| true, c))
            .collect();
        assert_eq!(picks.len(), 8);
    }
}
