//! Trace exporters: Chrome `trace_event` JSON (loads in `chrome://tracing`
//! and Perfetto) and JSONL.
//!
//! Both are hand-rolled — the workspace is offline, so no serde — and both
//! are deterministic functions of the event stream. The simulator has no
//! wall clock, so the Chrome `ts` field is the event sequence number
//! (1 event = 1 µs of trace time); `clock`/`rounds` stamps ride along in
//! `args` for real time-alignment.

use std::fmt::Write as _;

use crate::event::{Event, TraceEvent};

/// Append the event's payload fields as `"k":v` JSON pairs (leading comma
/// before each pair).
fn write_args(out: &mut String, e: &Event) {
    match *e {
        Event::LaunchBegin { kind, warps } => {
            let _ = write!(out, ",\"kind\":\"{}\",\"warps\":{}", kind.name(), warps);
        }
        Event::LaunchEnd { rounds } => {
            let _ = write!(out, ",\"rounds\":{rounds}");
        }
        Event::OpRetired {
            kind,
            op,
            key,
            outcome,
            probes,
            evict_depth,
            lock_waits,
        } => {
            let _ = write!(
                out,
                ",\"kind\":\"{}\",\"op\":{op},\"key\":{key},\"outcome\":\"{}\",\"probes\":{probes},\"evict_depth\":{evict_depth},\"lock_waits\":{lock_waits}",
                kind.name(),
                outcome.name(),
            );
        }
        Event::EvictStep {
            op,
            placed_key,
            carried_key,
            from_table,
            to_table,
            depth,
        } => {
            let _ = write!(
                out,
                ",\"op\":{op},\"placed_key\":{placed_key},\"carried_key\":{carried_key},\"from_table\":{from_table},\"to_table\":{to_table},\"depth\":{depth}",
            );
        }
        Event::LockConflict { space, index } => {
            let _ = write!(out, ",\"space\":{space},\"index\":{index}");
        }
        Event::ResizeBegin {
            grow,
            table,
            old_buckets,
        } => {
            let _ = write!(
                out,
                ",\"grow\":{grow},\"table\":{table},\"old_buckets\":{old_buckets}"
            );
        }
        Event::ResizeEnd {
            new_buckets,
            moved,
            residuals,
        } => {
            let _ = write!(
                out,
                ",\"new_buckets\":{new_buckets},\"moved\":{moved},\"residuals\":{residuals}"
            );
        }
        Event::MigrateChunkBegin {
            grow,
            table,
            cursor,
            chunk,
        } => {
            let _ = write!(
                out,
                ",\"grow\":{grow},\"table\":{table},\"cursor\":{cursor},\"chunk\":{chunk}"
            );
        }
        Event::MigrateChunkEnd {
            moved,
            residuals,
            backlog,
        } => {
            let _ = write!(
                out,
                ",\"moved\":{moved},\"residuals\":{residuals},\"backlog\":{backlog}"
            );
        }
        Event::BatchFlush {
            shard,
            window,
            probes,
            puts,
            deletes,
            coalesced,
        } => {
            let _ = write!(
                out,
                ",\"shard\":{shard},\"window\":{window},\"probes\":{probes},\"puts\":{puts},\"deletes\":{deletes},\"coalesced\":{coalesced}",
            );
        }
        Event::BatchEnd { completed } => {
            let _ = write!(out, ",\"completed\":{completed}");
        }
        Event::Shed { shard, depth, hard } => {
            let _ = write!(out, ",\"shard\":{shard},\"depth\":{depth},\"hard\":{hard}");
        }
        Event::FilterShed { shard, key } => {
            let _ = write!(out, ",\"shard\":{shard},\"key\":{key}");
        }
    }
}

/// Human-readable span name for a span-opening event (`launch:insert`,
/// `resize:upsize:t0`, `migrate:upsize:t0`, `flush:shard3`). Public so
/// downstream folded-stack exporters name frames identically to the
/// Chrome trace.
pub fn span_name(e: &Event) -> String {
    match e {
        Event::LaunchBegin { kind, .. } => format!("launch:{}", kind.name()),
        Event::ResizeBegin { grow, table, .. } => format!(
            "resize:{}:t{}",
            if *grow { "upsize" } else { "downsize" },
            table
        ),
        Event::MigrateChunkBegin { grow, table, .. } => format!(
            "migrate:{}:t{}",
            if *grow { "upsize" } else { "downsize" },
            table
        ),
        Event::BatchFlush { shard, .. } => format!("flush:shard{shard}"),
        other => other.name().to_string(),
    }
}

/// Render a Chrome `trace_event` JSON object for the whole event stream.
///
/// Span events become `"B"`/`"E"` duration pairs; everything else becomes
/// a thread-scoped instant (`"i"`). The exporter keeps the `B`/`E` stack
/// balanced even for truncated recordings: a closer with no matching
/// opener is demoted to an instant, and spans still open at the end of the
/// stream are closed synthetically, so the JSON always loads in Perfetto.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut open: Vec<String> = Vec::new();
    let mut last_ts = 0u64;
    for te in events {
        if !first {
            out.push(',');
        }
        first = false;
        last_ts = te.seq;
        let common_args = format!(
            "\"clock\":{},\"rounds\":{},\"span\":{},\"parent\":{}",
            te.clock, te.rounds, te.span, te.parent
        );
        if te.event.opens_span() {
            let name = span_name(&te.event);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{{common_args}",
                te.seq
            );
            write_args(&mut out, &te.event);
            out.push_str("}}");
            open.push(name);
        } else if te.event.closes_span() {
            match open.pop() {
                Some(name) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{{common_args}",
                        te.seq
                    );
                    write_args(&mut out, &te.event);
                    out.push_str("}}");
                }
                None => {
                    // Opener fell off the ring: demote to an instant so the
                    // B/E stack stays balanced.
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{{common_args}",
                        te.event.name(),
                        te.seq
                    );
                    write_args(&mut out, &te.event);
                    out.push_str("}}");
                }
            }
        } else {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{{common_args}",
                te.event.name(),
                te.seq
            );
            write_args(&mut out, &te.event);
            out.push_str("}}");
        }
    }
    // Close spans the recording ended inside of.
    while let Some(name) = open.pop() {
        last_ts += 1;
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{last_ts},\"pid\":0,\"tid\":0,\"args\":{{\"synthetic_close\":true}}}}"
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// One JSON object per line per event: the stamps plus the payload fields.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for te in events {
        let _ = write!(
            out,
            "{{\"seq\":{},\"clock\":{},\"rounds\":{},\"span\":{},\"parent\":{},\"event\":\"{}\"",
            te.seq,
            te.clock,
            te.rounds,
            te.span,
            te.parent,
            te.event.name()
        );
        write_args(&mut out, &te.event);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OpKind, OpOutcome};

    fn te(seq: u64, span: u32, parent: u32, event: Event) -> TraceEvent {
        TraceEvent {
            seq,
            clock: 0,
            rounds: 0,
            span,
            parent,
            event,
        }
    }

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// string literals, no trailing garbage.
    fn assert_balanced_json(s: &str) {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced JSON nesting in {s}");
        }
        assert_eq!(depth, 0, "unbalanced JSON in {s}");
        assert!(!in_str);
    }

    #[test]
    fn chrome_trace_pairs_b_and_e() {
        let events = [
            te(
                1,
                1,
                0,
                Event::LaunchBegin {
                    kind: OpKind::Insert,
                    warps: 2,
                },
            ),
            te(2, 1, 0, Event::LockConflict { space: 1, index: 4 }),
            te(3, 1, 0, Event::LaunchEnd { rounds: 9 }),
        ];
        let json = chrome_trace(&events);
        assert_balanced_json(&json);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"name\":\"launch:insert\""));
    }

    #[test]
    fn chrome_trace_closes_truncated_spans_and_demotes_orphans() {
        // Orphan closer (opener dropped) + span left open at the end.
        let events = [
            te(5, 3, 0, Event::LaunchEnd { rounds: 1 }),
            te(
                6,
                4,
                0,
                Event::ResizeBegin {
                    grow: true,
                    table: 2,
                    old_buckets: 8,
                },
            ),
        ];
        let json = chrome_trace(&events);
        assert_balanced_json(&json);
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        assert!(json.contains("synthetic_close"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let events = [
            te(
                1,
                0,
                0,
                Event::OpRetired {
                    kind: OpKind::Find,
                    op: 0,
                    key: 7,
                    outcome: OpOutcome::Miss,
                    probes: 2,
                    evict_depth: 0,
                    lock_waits: 0,
                },
            ),
            te(
                2,
                0,
                0,
                Event::Shed {
                    shard: 1,
                    depth: 12,
                    hard: false,
                },
            ),
        ];
        let out = jsonl(&events);
        assert_eq!(out.lines().count(), 2);
        for line in out.lines() {
            assert_balanced_json(line);
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(out.contains("\"outcome\":\"miss\""));
        assert!(out.contains("\"hard\":false"));
    }

    #[test]
    fn empty_stream_is_valid() {
        let json = chrome_trace(&[]);
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(jsonl(&[]), "");
    }
}
